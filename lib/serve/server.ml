(* The obfuscation daemon: a single-threaded event loop multiplexing client
   connections, a resident worker pool, and a sharded rewrite cache.

   Control flow per request:

     admit ──► cache hit? ──────────────────────────────► reply (Hit)
         └──► same key in flight? ──► attach waiter ────► reply (Coalesced)
         └──► queue full? ──────────────────────────────► reply (429)
         └──► enqueue ──► dispatch to idle worker ──────► reply (Miss)
                     └──► deadline passes first ────────► reply (504)

   Admission control is deliberate back-pressure: the queue is bounded
   ([max_queue]) and every queued request carries a deadline
   ([deadline_ms]), so under overload the server sheds with an immediate
   429-style response instead of building an unbounded latency backlog —
   the client retries or routes elsewhere, and the p99 of accepted work
   stays bounded.  Duplicate in-flight keys coalesce onto one rewrite:
   common when a build farm rebuilds one artifact from many nodes at once.

   Workers are [Jobs.Persist] residents (fork once, serve many), each
   holding its own warm [Oneshot] table, so after the first request for a
   program the compile + found-gadget scan are never repaid.  [jobs = 0]
   computes inline on the event loop — slower, but fully deterministic,
   which the protocol-semantics tests exploit.

   Drain: SIGTERM/SIGINT (or the [shutdown] verb) stop accepting and stop
   reading; queued and in-flight work completes, replies flush, then the
   loop exits 0.  Nothing accepted is dropped. *)

type opts = {
  jobs : int;                   (* resident workers; 0 = inline compute *)
  shards : int;
  cache_dir : string;
  cache_max_bytes : int option; (* prune threshold; None = unbounded *)
  max_queue : int;
  deadline_ms : float option;   (* max queue wait before a 504 *)
  timeout_s : float option;     (* max rewrite wall time in a worker *)
  verbose : bool;
}

let default_opts = {
  jobs = 0;
  shards = 4;
  cache_dir = "_serve_cache";
  cache_max_bytes = None;
  max_queue = 64;
  deadline_ms = None;
  timeout_s = Some 300.0;
  verbose = false;
}

type listen =
  | L_socket of string                           (* Unix-domain socket path *)
  | L_pair of Unix.file_descr * Unix.file_descr  (* read fd, write fd *)

(* --- connections ------------------------------------------------------------ *)

type conn = {
  c_rfd : Unix.file_descr;
  c_wfd : Unix.file_descr;
  c_defr : Protocol.deframer;
  mutable c_out : string;       (* bytes awaiting a writable fd *)
  mutable c_eof : bool;         (* peer closed / protocol violation *)
  mutable c_dead : bool;        (* fds closed, drop from the list *)
}

let mk_conn rfd wfd =
  Unix.set_nonblock rfd;
  if wfd <> rfd then Unix.set_nonblock wfd;
  { c_rfd = rfd; c_wfd = wfd; c_defr = Protocol.deframer ();
    c_out = ""; c_eof = false; c_dead = false }

(* --- pending work ----------------------------------------------------------- *)

type waiter = {
  wt_conn : conn;
  wt_id : int;
  wt_want : bool;
  wt_enq : float;
}

type pending = {
  pd_key : string;
  pd_spec : Oneshot.spec;
  pd_enq : float;
  pd_deadline : float;           (* queue-wait budget; infinity if none *)
  mutable pd_queue_ms : float;   (* set at dispatch *)
  mutable pd_waiters : waiter list;  (* newest first; head of rev = first *)
}

(* --- latency ring ----------------------------------------------------------- *)

let ring_cap = 4096

type ring = { r_buf : float array; mutable r_n : int }

let ring () = { r_buf = Array.make ring_cap 0.0; r_n = 0 }

let ring_add r v =
  r.r_buf.(r.r_n mod ring_cap) <- v;
  r.r_n <- r.r_n + 1

(* Exact percentile over the retained window (last [ring_cap] samples). *)
let ring_percentile r p =
  let n = min r.r_n ring_cap in
  if n = 0 then 0.0
  else begin
    let a = Array.sub r.r_buf 0 n in
    Array.sort compare a;
    a.(min (n - 1) (int_of_float (p /. 100.0 *. float_of_int (n - 1) +. 0.5)))
  end

(* --- server state ----------------------------------------------------------- *)

type state = {
  st_opts : opts;
  st_cache : Shardcache.t;
  st_warm : Oneshot.warm;        (* parent-side: digests for admission;
                                    also the compute path when jobs = 0 *)
  st_pool : (Oneshot.spec, (Oneshot.artifact, string) result) Jobs.Persist.t option;
  st_t0 : float;
  mutable st_conns : conn list;
  mutable st_queue : pending list;               (* FIFO, append at tail *)
  st_bykey : (string, pending) Hashtbl.t;        (* queued or in flight *)
  st_inflight : (int, pending) Hashtbl.t;        (* ticket -> pending *)
  st_lat : ring;
  mutable st_requests : int;
  mutable st_completed : int;
  mutable st_hits : int;
  mutable st_misses : int;
  mutable st_coalesced : int;
  mutable st_shed : int;
  mutable st_expired : int;
  mutable st_errors : int;
  mutable st_stores : int;       (* stores since last prune check *)
  mutable st_draining : bool;
}

let m_requests = Obs.Metrics.counter "serve.requests"
let m_hits = Obs.Metrics.counter "serve.cache_hits"
let m_misses = Obs.Metrics.counter "serve.cache_misses"
let m_coalesced = Obs.Metrics.counter "serve.coalesced"
let m_shed = Obs.Metrics.counter "serve.shed"
let m_expired = Obs.Metrics.counter "serve.expired"
let m_errors = Obs.Metrics.counter "serve.errors"
let m_queue_depth = Obs.Metrics.gauge "serve.queue_depth_max"
let m_lat = Obs.Metrics.histogram "serve.latency_us"

let logf st fmt =
  if st.st_opts.verbose then Printf.eprintf fmt
  else Printf.ifprintf stderr fmt

(* --- replies ---------------------------------------------------------------- *)

(* Replies to a connection whose peer already vanished are dropped; the
   rewrite still happened and was cached, which is what matters. *)
let respond _st (c : conn) (rs : Protocol.response) =
  if not c.c_dead then
    c.c_out <- c.c_out ^ Protocol.frame (Protocol.encode_response rs)

let reply_of (a : Oneshot.artifact) ~cache ~want ~queue_ms ~rewrite_ms :
  Protocol.rewrite_reply =
  { Protocol.rr_prog = a.Oneshot.a_prog;
    rr_digest = a.Oneshot.a_digest;
    rr_key = a.Oneshot.a_key;
    rr_cache = cache;
    rr_image = (if want then Some a.Oneshot.a_image else None);
    rr_image_digest = a.Oneshot.a_image_digest;
    rr_funcs = a.Oneshot.a_funcs;
    rr_gadget_uses = a.Oneshot.a_uses;
    rr_unique_gadgets = a.Oneshot.a_uniq;
    rr_queue_ms = queue_ms;
    rr_rewrite_ms = rewrite_ms }

let observe_latency st enq now =
  let ms = (now -. enq) *. 1000.0 in
  ring_add st.st_lat ms;
  Obs.Metrics.observe m_lat (int_of_float (ms *. 1000.0))

let reply_error st c id code msg =
  (match code with
   | 429 -> st.st_shed <- st.st_shed + 1; Obs.Metrics.incr m_shed
   | 504 -> st.st_expired <- st.st_expired + 1; Obs.Metrics.incr m_expired
   | _ -> st.st_errors <- st.st_errors + 1; Obs.Metrics.incr m_errors);
  respond st c { Protocol.rs_id = id; rs_body = Protocol.R_error { code; msg } }

let maybe_prune st =
  match st.st_opts.cache_max_bytes with
  | None -> ()
  | Some mb ->
    st.st_stores <- st.st_stores + 1;
    if st.st_stores >= 32 then begin
      st.st_stores <- 0;
      let n, b = Shardcache.prune st.st_cache ~max_bytes:mb in
      if n > 0 then logf st "[serve] pruned %d entries (%d bytes)\n%!" n b
    end

(* Completion of one pending rewrite: store, then answer every waiter.  The
   earliest-registered waiter is the one whose request caused the compute
   (Miss); the rest piggybacked (Coalesced). *)
let finish st (pd : pending)
    (outcome : [ `Res of (Oneshot.artifact, string) result
               | `Fail of string
               | `Timeout of float ])
    ~rewrite_ms =
  Hashtbl.remove st.st_bykey pd.pd_key;
  let now = Unix.gettimeofday () in
  let waiters = List.rev pd.pd_waiters in
  (match outcome with
   | `Res (Ok a) ->
     Shardcache.store st.st_cache pd.pd_key a;
     maybe_prune st;
     List.iteri
       (fun i wt ->
          let cache =
            if i = 0 then Protocol.Miss else Protocol.Coalesced
          in
          if i = 0 then begin
            st.st_misses <- st.st_misses + 1; Obs.Metrics.incr m_misses
          end else begin
            st.st_coalesced <- st.st_coalesced + 1; Obs.Metrics.incr m_coalesced
          end;
          st.st_completed <- st.st_completed + 1;
          observe_latency st wt.wt_enq now;
          respond st wt.wt_conn
            { Protocol.rs_id = wt.wt_id;
              rs_body =
                Protocol.R_rewrite
                  (reply_of a ~cache ~want:wt.wt_want
                     ~queue_ms:pd.pd_queue_ms ~rewrite_ms) })
       waiters
   | `Res (Error m) ->
     List.iter (fun wt -> reply_error st wt.wt_conn wt.wt_id 400 m) waiters
   | `Fail m ->
     List.iter
       (fun wt ->
          reply_error st wt.wt_conn wt.wt_id 500 ("rewrite failed: " ^ m))
       waiters
   | `Timeout s ->
     List.iter
       (fun wt ->
          reply_error st wt.wt_conn wt.wt_id 504
            (Printf.sprintf "rewrite timed out after %.1fs" s))
       waiters)

let finish_expired st (pd : pending) =
  Hashtbl.remove st.st_bykey pd.pd_key;
  List.iter
    (fun wt ->
       reply_error st wt.wt_conn wt.wt_id 504 "deadline exceeded in queue")
    (List.rev pd.pd_waiters)

(* --- admission -------------------------------------------------------------- *)

let admit st (c : conn) id (q : Protocol.rewrite_req) =
  st.st_requests <- st.st_requests + 1;
  Obs.Metrics.incr m_requests;
  let now = Unix.gettimeofday () in
  (* Validate the config up front so malformed requests bounce at admission
     rather than poisoning a worker slot. *)
  match Oneshot.config_of_name ~seed:q.Protocol.q_seed q.Protocol.q_config with
  | Error m -> reply_error st c id 400 m
  | Ok _ ->
    (match q.Protocol.q_prog, q.Protocol.q_digest with
     | None, None -> reply_error st c id 400 "request needs prog or digest"
     | None, Some digest ->
       (* Digest-only addressing: purely a cache probe — the server cannot
          rebuild an image it only knows by digest. *)
       let key =
         Oneshot.key ~digest ~config:q.Protocol.q_config ~seed:q.Protocol.q_seed
       in
       (match (Shardcache.find st.st_cache key : Oneshot.artifact option) with
        | Some a ->
          st.st_hits <- st.st_hits + 1; Obs.Metrics.incr m_hits;
          st.st_completed <- st.st_completed + 1;
          observe_latency st now now;
          respond st c
            { Protocol.rs_id = id;
              rs_body =
                Protocol.R_rewrite
                  (reply_of a ~cache:Protocol.Hit ~want:q.Protocol.q_want_image
                     ~queue_ms:0.0 ~rewrite_ms:0.0) }
        | None ->
          reply_error st c id 404
            "unknown digest (not cached here; resubmit with prog)")
     | Some prog, _ ->
       (match Oneshot.digest_of st.st_warm prog with
        | Error m -> reply_error st c id 404 m
        | Ok digest ->
          let key =
            Oneshot.key ~digest ~config:q.Protocol.q_config
              ~seed:q.Protocol.q_seed
          in
          let wt = { wt_conn = c; wt_id = id;
                     wt_want = q.Protocol.q_want_image; wt_enq = now } in
          (match (Shardcache.find st.st_cache key : Oneshot.artifact option) with
           | Some a ->
             st.st_hits <- st.st_hits + 1; Obs.Metrics.incr m_hits;
             st.st_completed <- st.st_completed + 1;
             observe_latency st now now;
             respond st c
               { Protocol.rs_id = id;
                 rs_body =
                   Protocol.R_rewrite
                     (reply_of a ~cache:Protocol.Hit ~want:wt.wt_want
                        ~queue_ms:0.0 ~rewrite_ms:0.0) }
           | None ->
             (match Hashtbl.find_opt st.st_bykey key with
              | Some pd -> pd.pd_waiters <- wt :: pd.pd_waiters
              | None ->
                if List.length st.st_queue >= st.st_opts.max_queue then
                  reply_error st c id 429
                    (Printf.sprintf "queue full (%d pending)"
                       st.st_opts.max_queue)
                else begin
                  let deadline =
                    match st.st_opts.deadline_ms with
                    | Some ms -> now +. (ms /. 1000.0)
                    | None -> infinity
                  in
                  let pd =
                    { pd_key = key;
                      pd_spec = { Oneshot.sp_prog = prog;
                                  sp_config = q.Protocol.q_config;
                                  sp_seed = q.Protocol.q_seed };
                      pd_enq = now; pd_deadline = deadline;
                      pd_queue_ms = 0.0; pd_waiters = [ wt ] }
                  in
                  st.st_queue <- st.st_queue @ [ pd ];
                  Hashtbl.replace st.st_bykey key pd
                end))))

(* --- stats ------------------------------------------------------------------ *)

let stats_now st : Protocol.stats =
  let now = Unix.gettimeofday () in
  let up = Float.max 1e-9 (now -. st.st_t0) in
  let lookups = st.st_hits + st.st_misses in
  { Protocol.st_uptime_s = up;
    st_jobs = st.st_opts.jobs;
    st_queue_depth = List.length st.st_queue;
    st_inflight = Hashtbl.length st.st_inflight;
    st_requests = st.st_requests;
    st_completed = st.st_completed;
    st_hits = st.st_hits;
    st_misses = st.st_misses;
    st_coalesced = st.st_coalesced;
    st_shed = st.st_shed;
    st_expired = st.st_expired;
    st_errors = st.st_errors;
    st_throughput_rps = float_of_int st.st_completed /. up;
    st_hit_rate =
      (if lookups = 0 then 0.0
       else 100.0 *. float_of_int st.st_hits /. float_of_int lookups);
    st_p50_ms = ring_percentile st.st_lat 50.0;
    st_p90_ms = ring_percentile st.st_lat 90.0;
    st_p99_ms = ring_percentile st.st_lat 99.0;
    st_cache_entries = Shardcache.entries st.st_cache;
    st_cache_bytes = Shardcache.size_bytes st.st_cache }

(* --- frame handling --------------------------------------------------------- *)

let handle_frame st (c : conn) payload =
  match Protocol.decode_request payload with
  | Error m ->
    reply_error st c 0 400 ("bad request: " ^ m)
  | Ok rq ->
    (match rq.Protocol.rq_body with
     | Protocol.Ping ->
       respond st c { Protocol.rs_id = rq.Protocol.rq_id; rs_body = Protocol.R_pong }
     | Protocol.Stats ->
       respond st c
         { Protocol.rs_id = rq.Protocol.rq_id;
           rs_body = Protocol.R_stats (stats_now st) }
     | Protocol.Shutdown ->
       respond st c { Protocol.rs_id = rq.Protocol.rq_id; rs_body = Protocol.R_bye };
       st.st_draining <- true
     | Protocol.Rewrite q -> admit st c rq.Protocol.rq_id q)

let read_conn st (c : conn) =
  let buf = Bytes.create 65536 in
  let rec go () =
    if c.c_eof || c.c_dead then ()
    else
      match Unix.read c.c_rfd buf 0 (Bytes.length buf) with
      | 0 -> c.c_eof <- true
      | n ->
        (match Protocol.feed c.c_defr (Bytes.sub_string buf 0 n) with
         | Error m ->
           (* Unframeable stream: answer once, then cut the connection. *)
           reply_error st c 0 400 m;
           c.c_eof <- true
         | Ok frames ->
           List.iter (handle_frame st c) frames;
           go ())
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error (_, _, _) -> c.c_eof <- true
  in
  go ()

let flush_conn (c : conn) =
  if c.c_out <> "" && not c.c_dead then
    match
      Unix.write_substring c.c_wfd c.c_out 0 (String.length c.c_out)
    with
    | n -> c.c_out <- String.sub c.c_out n (String.length c.c_out - n)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (_, _, _) ->
      (* Peer gone: its replies are undeliverable. *)
      c.c_out <- "";
      c.c_eof <- true

(* --- dispatch --------------------------------------------------------------- *)

let sweep_queue st now =
  let expired, keep =
    List.partition (fun pd -> now > pd.pd_deadline) st.st_queue
  in
  st.st_queue <- keep;
  List.iter (finish_expired st) expired

let inline_compute st (pd : pending) =
  let t0 = Unix.gettimeofday () in
  let res =
    try `Res (Oneshot.rewrite st.st_warm pd.pd_spec)
    with e -> `Fail (Printexc.to_string e)
  in
  let rewrite_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  finish st pd res ~rewrite_ms

let rec dispatch st =
  match st.st_queue with
  | [] -> ()
  | pd :: rest ->
    let now = Unix.gettimeofday () in
    if now > pd.pd_deadline then begin
      st.st_queue <- rest;
      finish_expired st pd;
      dispatch st
    end
    else (
      match st.st_pool with
      | None ->
        st.st_queue <- rest;
        pd.pd_queue_ms <- (now -. pd.pd_enq) *. 1000.0;
        inline_compute st pd;
        dispatch st
      | Some p ->
        (match Jobs.Persist.try_submit p pd.pd_spec with
         | None -> ()                           (* every worker busy *)
         | Some ticket ->
           st.st_queue <- rest;
           pd.pd_queue_ms <- (now -. pd.pd_enq) *. 1000.0;
           Hashtbl.replace st.st_inflight ticket pd;
           dispatch st))

let handle_pool_result st (ticket, outcome, wall_s) =
  match Hashtbl.find_opt st.st_inflight ticket with
  | None -> ()
  | Some pd ->
    Hashtbl.remove st.st_inflight ticket;
    let rewrite_ms = wall_s *. 1000.0 in
    (match outcome with
     | Jobs.Persist.Done r -> finish st pd (`Res r) ~rewrite_ms
     | Jobs.Persist.Failed m -> finish st pd (`Fail m) ~rewrite_ms
     | Jobs.Persist.Timed_out s -> finish st pd (`Timeout s) ~rewrite_ms)

(* --- the loop --------------------------------------------------------------- *)

let run ?(opts = default_opts) (listen : listen) : int =
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  let st =
    { st_opts = opts;
      st_cache = Shardcache.create ~shards:opts.shards ~dir:opts.cache_dir ();
      st_warm = Oneshot.warm ();
      st_pool =
        (if opts.jobs <= 0 then None
         else begin
           (* Each forked worker owns a private warm table, populated lazily
              and kept across requests — fork-inherited closure state. *)
           let warm_w = Oneshot.warm () in
           let f (spec : Oneshot.spec) = Oneshot.rewrite warm_w spec in
           Some (Jobs.Persist.create ?timeout_s:opts.timeout_s ~jobs:opts.jobs f)
         end);
      st_t0 = Unix.gettimeofday ();
      st_conns = [];
      st_queue = [];
      st_bykey = Hashtbl.create 64;
      st_inflight = Hashtbl.create 16;
      st_lat = ring ();
      st_requests = 0; st_completed = 0; st_hits = 0; st_misses = 0;
      st_coalesced = 0; st_shed = 0; st_expired = 0; st_errors = 0;
      st_stores = 0; st_draining = false }
  in
  let drain _ = st.st_draining <- true in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle drain) in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle drain) in
  let lfd =
    match listen with
    | L_socket path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      Unix.set_nonblock fd;
      Some fd
    | L_pair (rfd, wfd) ->
      st.st_conns <- [ mk_conn rfd wfd ];
      None
  in
  logf st "[serve] listening (jobs=%d shards=%d queue<=%d)\n%!" opts.jobs
    opts.shards opts.max_queue;
  let accept_loop fd =
    let rec go () =
      match Unix.accept fd with
      | (cfd, _) ->
        st.st_conns <- mk_conn cfd cfd :: st.st_conns;
        go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    in
    go ()
  in
  let gc_conns () =
    List.iter
      (fun c ->
         if (not c.c_dead) && c.c_eof && c.c_out = "" then begin
           c.c_dead <- true;
           (try Unix.close c.c_rfd with Unix.Unix_error _ -> ());
           if c.c_wfd <> c.c_rfd then
             try Unix.close c.c_wfd with Unix.Unix_error _ -> ()
         end)
      st.st_conns;
    st.st_conns <- List.filter (fun c -> not c.c_dead) st.st_conns
  in
  let rec loop () =
    let now = Unix.gettimeofday () in
    sweep_queue st now;
    (match st.st_pool with
     | Some p -> List.iter (handle_pool_result st) (Jobs.Persist.expire p ~now)
     | None -> ());
    dispatch st;
    gc_conns ();
    Obs.Metrics.set_max m_queue_depth (List.length st.st_queue);
    let work_left =
      st.st_queue <> [] || Hashtbl.length st.st_inflight > 0
    in
    let out_left = List.exists (fun c -> c.c_out <> "") st.st_conns in
    let stdio_done =
      lfd = None && st.st_conns = [] && not work_left
    in
    if (st.st_draining && (not work_left) && not out_left) || stdio_done then
      ()                                          (* clean exit *)
    else begin
      let rfds =
        (if st.st_draining then []
         else
           (match lfd with Some fd -> [ fd ] | None -> [])
           @ List.filter_map
               (fun c -> if c.c_eof then None else Some c.c_rfd)
               st.st_conns)
        @ (match st.st_pool with Some p -> Jobs.Persist.fds p | None -> [])
      in
      let wfds =
        List.filter_map
          (fun c -> if c.c_out <> "" then Some c.c_wfd else None)
          st.st_conns
      in
      let timeout =
        let dl =
          List.fold_left
            (fun acc pd -> Float.min acc pd.pd_deadline)
            infinity st.st_queue
        in
        let dl =
          match st.st_pool with
          | Some p -> Float.min dl (Jobs.Persist.next_deadline p)
          | None -> dl
        in
        if dl = infinity then 0.25
        else Float.max 0.0 (Float.min 0.25 (dl -. now))
      in
      match Unix.select rfds wfds [] timeout with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | ready_r, ready_w, _ ->
        (match lfd with
         | Some fd when List.mem fd ready_r -> accept_loop fd
         | _ -> ());
        (match st.st_pool with
         | Some p ->
           let pool_fds = Jobs.Persist.fds p in
           List.iter
             (fun fd ->
                if List.mem fd pool_fds then
                  Option.iter (handle_pool_result st)
                    (Jobs.Persist.handle_ready p fd))
             ready_r
         | None -> ());
        List.iter
          (fun c -> if List.mem c.c_rfd ready_r then read_conn st c)
          st.st_conns;
        List.iter
          (fun c -> if List.mem c.c_wfd ready_w then flush_conn c)
          st.st_conns;
        loop ()
    end
  in
  let rc =
    match loop () with
    | () -> 0
    | exception e ->
      Printf.eprintf "[serve] fatal: %s\n%!" (Printexc.to_string e);
      1
  in
  (* teardown *)
  (match st.st_pool with Some p -> Jobs.Persist.shutdown p | None -> ());
  List.iter
    (fun c ->
       if not c.c_dead then begin
         (try Unix.close c.c_rfd with Unix.Unix_error _ -> ());
         if c.c_wfd <> c.c_rfd then
           try Unix.close c.c_wfd with Unix.Unix_error _ -> ()
       end)
    st.st_conns;
  (match lfd, listen with
   | Some fd, L_socket path ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     (try Unix.unlink path with Unix.Unix_error _ -> ())
   | _ -> ());
  (match opts.cache_max_bytes with
   | Some mb -> ignore (Shardcache.prune st.st_cache ~max_bytes:mb)
   | None -> ());
  ignore (Sys.signal Sys.sigterm old_term);
  ignore (Sys.signal Sys.sigint old_int);
  logf st "[serve] drained: %d completed, %d hits, %d shed\n%!"
    st.st_completed st.st_hits st.st_shed;
  rc
