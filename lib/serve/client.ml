(* Blocking client for the obfuscation service: one connection, synchronous
   request/response.  The CLI, the tests and the load generator's warmup
   paths use this; the load generator's hot path drives its own multiplexed
   connections (Loadgen). *)

type t = {
  t_rfd : Unix.file_descr;
  t_wfd : Unix.file_descr;
  mutable t_next : int;
}

let connect path : (t, string) result =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> Ok { t_rfd = fd; t_wfd = fd; t_next = 1 }
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Printf.sprintf "connect %s: %s" path (Unix.error_message e))

(* Talk over an existing fd pair (socketpair or pipes — the --stdio mode). *)
let of_pair ~input ~output = { t_rfd = input; t_wfd = output; t_next = 1 }

let close t =
  (try Unix.close t.t_rfd with Unix.Unix_error _ -> ());
  if t.t_wfd <> t.t_rfd then
    try Unix.close t.t_wfd with Unix.Unix_error _ -> ()

let call (t : t) (body : Protocol.req_body) : (Protocol.resp_body, string) result =
  let id = t.t_next in
  t.t_next <- id + 1;
  match
    Protocol.write_frame t.t_wfd
      (Protocol.encode_request { Protocol.rq_id = id; rq_body = body })
  with
  | exception Unix.Unix_error (e, _, _) ->
    Error ("send: " ^ Unix.error_message e)
  | () ->
    let rec await () =
      match Protocol.read_frame t.t_rfd with
      | Error `Eof -> Error "server closed connection"
      | Error `Truncated -> Error "truncated frame from server"
      | Error (`Oversized n) ->
        Error (Printf.sprintf "oversized frame from server (%d bytes)" n)
      | Ok payload ->
        (match Protocol.decode_response payload with
         | Error m -> Error ("bad response: " ^ m)
         (* id 0 carries connection-level errors (unparseable request). *)
         | Ok rs when rs.Protocol.rs_id = id || rs.Protocol.rs_id = 0 ->
           Ok rs.Protocol.rs_body
         | Ok _ -> await ())
    in
    await ()

let rewrite t ?(want_image = false) ~prog ~config ~seed () :
  (Protocol.rewrite_reply, string) result =
  match
    call t
      (Protocol.Rewrite
         { Protocol.q_prog = Some prog; q_digest = None; q_config = config;
           q_seed = seed; q_want_image = want_image })
  with
  | Ok (Protocol.R_rewrite r) -> Ok r
  | Ok (Protocol.R_error e) -> Error (Printf.sprintf "%d: %s" e.code e.msg)
  | Ok _ -> Error "unexpected response kind"
  | Error m -> Error m

let stats t : (Protocol.stats, string) result =
  match call t Protocol.Stats with
  | Ok (Protocol.R_stats s) -> Ok s
  | Ok (Protocol.R_error e) -> Error (Printf.sprintf "%d: %s" e.code e.msg)
  | Ok _ -> Error "unexpected response kind"
  | Error m -> Error m

let ping t =
  match call t Protocol.Ping with
  | Ok Protocol.R_pong -> Ok ()
  | Ok _ -> Error "unexpected response kind"
  | Error m -> Error m

let shutdown t =
  match call t Protocol.Shutdown with
  | Ok Protocol.R_bye -> Ok ()
  | Ok _ -> Error "unexpected response kind"
  | Error m -> Error m
