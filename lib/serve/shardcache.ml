(* Digest-routed shard array over [Jobs.Cache].

   One flat cache directory serves a single process fine, but a daemon
   whose forked helpers and sibling daemons share a cache dir contends on
   directory operations, and pruning a million-entry flat dir stats every
   file to evict one.  Sharding by key digest bounds both: each shard is an
   independent [Jobs.Cache] directory (`shard-00/` ... `shard-NN/`) and a
   key's shard is a pure function of its MD5, so any process computing the
   same route reads the same entry.  The shard count is a layout property:
   changing it re-routes keys, which is just a cold cache, not corruption —
   the executable-digest salt inside each [Jobs.Cache] already invalidates
   across builds anyway. *)

type t = {
  sc_dir : string;
  sc_shards : Jobs.Cache.t array;
}

let shard_name i = Printf.sprintf "shard-%02d" i

let create ?salt ?(shards = 4) ~dir () =
  let n = max 1 shards in
  { sc_dir = dir;
    sc_shards =
      Array.init n (fun i ->
          Jobs.Cache.create ?salt ~dir:(Filename.concat dir (shard_name i)) ()) }

let nshards t = Array.length t.sc_shards

(* Route on the first two digest bytes: uniform for MD5, and independent of
   the per-shard content address (which re-digests with the salt). *)
let shard_of t k =
  let d = Digest.string k in
  ((Char.code d.[0] lsl 8) lor Char.code d.[1]) mod Array.length t.sc_shards

let find t k = Jobs.Cache.find t.sc_shards.(shard_of t k) k
let store t k v = Jobs.Cache.store t.sc_shards.(shard_of t k) k v

let sum f t = Array.fold_left (fun acc c -> acc + f c) 0 t.sc_shards

let hits t = sum (fun c -> c.Jobs.Cache.hits) t
let misses t = sum (fun c -> c.Jobs.Cache.misses) t
let corrupt t = sum (fun c -> c.Jobs.Cache.corrupt) t
let size_bytes t = sum Jobs.Cache.size_bytes t

let entries t =
  sum
    (fun c ->
       let dir = c.Jobs.Cache.dir in
       if Sys.file_exists dir && Sys.is_directory dir then
         Array.fold_left
           (fun acc f ->
              if Sys.is_directory (Filename.concat dir f) then acc else acc + 1)
           0 (Sys.readdir dir)
       else 0)
    t

(* Evict down to [max_bytes] total, budgeted evenly across shards.  An even
   split (rather than a global LRU merge) keeps pruning O(shard) and is
   within one shard-imbalance of the same outcome for digest-routed keys. *)
let prune t ~max_bytes =
  let per_shard = max_bytes / Array.length t.sc_shards in
  Array.fold_left
    (fun (n, b) c ->
       let dn, db = Jobs.Cache.prune ~max_bytes:per_shard c in
       (n + dn, b + db))
    (0, 0) t.sc_shards
