(* Wire protocol of the obfuscation service.

   Frames are a 4-byte big-endian payload length followed by a JSON
   document, over a Unix-domain socket or a pipe pair.  JSON keeps the
   protocol inspectable (`socat - UNIX:sock | xxd`) and reuses the repo's
   existing reader (Obs.Json) on the decode side; the image artifact — the
   only binary payload — travels hex-encoded inside it.  Every request
   carries a client-assigned [id] echoed in its response, so clients may
   pipeline requests on one connection and correlate out-of-order
   completions.

   Two I/O styles are provided: blocking [read_frame]/[write_frame] for
   clients and tests, and an incremental [deframer] for the server's
   non-blocking event loop (feed whatever [read] returned, get back the
   complete frames it contained). *)

(* Upper bound on a frame: past this the peer is broken or hostile and the
   connection is cut rather than buffered without bound.  8 MiB comfortably
   holds the largest corpus image hex-encoded. *)
let max_frame = 8 * 1024 * 1024

(* --- framing ---------------------------------------------------------------- *)

let be32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let frame payload =
  let n = String.length payload in
  if n > max_frame then
    invalid_arg (Printf.sprintf "Serve.Protocol.frame: %d bytes > max_frame" n);
  let b = Bytes.create (4 + n) in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.blit_string payload 0 b 4 n;
  Bytes.to_string b

let rec retry_read fd b off len =
  try Unix.read fd b off len
  with Unix.Unix_error (Unix.EINTR, _, _) -> retry_read fd b off len

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    match Unix.write fd b !off (n - !off) with
    | w -> off := !off + w
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let write_frame fd payload = write_all fd (frame payload)

(* [`Eof] is a clean close at a frame boundary; [`Truncated] is a close
   mid-frame (header or body cut short) and means data was lost. *)
let read_exact fd n : (string, [ `Eof | `Truncated ]) result =
  let b = Bytes.create n in
  let off = ref 0 in
  let eof = ref false in
  while (not !eof) && !off < n do
    match retry_read fd b !off (n - !off) with
    | 0 -> eof := true
    | r -> off := !off + r
    | exception Unix.Unix_error _ -> eof := true
  done;
  if !off = n then Ok (Bytes.to_string b)
  else if !off = 0 then Error `Eof
  else Error `Truncated

let read_frame fd : (string, [ `Eof | `Truncated | `Oversized of int ]) result =
  match read_exact fd 4 with
  | Error `Eof -> Error `Eof
  | Error `Truncated -> Error `Truncated
  | Ok hdr ->
    let len = be32 hdr 0 in
    if len > max_frame then Error (`Oversized len)
    else (
      match read_exact fd len with
      | Ok p -> Ok p
      | Error _ -> Error `Truncated)   (* header without full body: data lost *)

(* Incremental deframer for non-blocking reads.  [feed] returns every frame
   completed by the new chunk, in arrival order; an oversized length field
   is an unrecoverable protocol error (the stream can no longer be framed). *)
type deframer = { mutable d_pending : string }

let deframer () = { d_pending = "" }

let feed (d : deframer) (chunk : string) : (string list, string) result =
  d.d_pending <- d.d_pending ^ chunk;
  let rec go acc =
    let s = d.d_pending in
    let n = String.length s in
    if n < 4 then Ok (List.rev acc)
    else
      let len = be32 s 0 in
      if len > max_frame then
        Error (Printf.sprintf "oversized frame: %d bytes (max %d)" len max_frame)
      else if n < 4 + len then Ok (List.rev acc)
      else begin
        d.d_pending <- String.sub s (4 + len) (n - 4 - len);
        go (String.sub s 4 len :: acc)
      end
  in
  go []

(* --- hex (binary image payloads inside JSON) -------------------------------- *)

let hex_encode s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun ch -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code ch))) s;
  Buffer.contents b

let hex_decode s : (string, string) result =
  let n = String.length s in
  if n mod 2 <> 0 then Error "odd-length hex string"
  else
    let nib c =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> -1
    in
    let b = Bytes.create (n / 2) in
    let ok = ref true in
    for i = 0 to (n / 2) - 1 do
      let hi = nib s.[2 * i] and lo = nib s.[(2 * i) + 1] in
      if hi < 0 || lo < 0 then ok := false
      else Bytes.set b i (Char.chr ((hi lsl 4) lor lo))
    done;
    if !ok then Ok (Bytes.to_string b) else Error "bad hex digit"

(* --- message types ---------------------------------------------------------- *)

type cache_status = Hit | Miss | Coalesced

let cache_status_to_string = function
  | Hit -> "hit"
  | Miss -> "miss"
  | Coalesced -> "coalesced"

let cache_status_of_string = function
  | "hit" -> Some Hit
  | "miss" -> Some Miss
  | "coalesced" -> Some Coalesced
  | _ -> None

type rewrite_req = {
  q_prog : string option;      (* registry program name *)
  q_digest : string option;    (* input-image digest: cache-only addressing *)
  q_config : string;           (* "plain" | "ropK[+p2][+gc]" *)
  q_seed : int;
  q_want_image : bool;         (* false: audit summary only, no artifact *)
}

type req_body =
  | Rewrite of rewrite_req
  | Stats
  | Ping
  | Shutdown

type request = { rq_id : int; rq_body : req_body }

type rewrite_reply = {
  rr_prog : string;
  rr_digest : string;          (* digest of the *input* image *)
  rr_key : string;             (* full cache key (digest x config x seed) *)
  rr_cache : cache_status;
  rr_image : string option;    (* canonical serialization (raw bytes here;
                                  hex on the wire); None unless requested *)
  rr_image_digest : string;
  rr_funcs : (string * string) list;  (* per-function audit line *)
  rr_gadget_uses : int;
  rr_unique_gadgets : int;
  rr_queue_ms : float;         (* admission-to-dispatch wait *)
  rr_rewrite_ms : float;       (* rewrite wall time (0 on cache hits) *)
}

type stats = {
  st_uptime_s : float;
  st_jobs : int;
  st_queue_depth : int;
  st_inflight : int;
  st_requests : int;
  st_completed : int;
  st_hits : int;
  st_misses : int;
  st_coalesced : int;
  st_shed : int;
  st_expired : int;
  st_errors : int;
  st_throughput_rps : float;
  st_hit_rate : float;         (* percent, hits / (hits + misses) *)
  st_p50_ms : float;
  st_p90_ms : float;
  st_p99_ms : float;
  st_cache_entries : int;
  st_cache_bytes : int;
}

type resp_body =
  | R_rewrite of rewrite_reply
  | R_stats of stats
  | R_pong
  | R_bye
  | R_error of { code : int; msg : string }
      (* 400 bad request, 404 unknown program/digest, 429 queue full,
         500 worker failure, 503 draining, 504 deadline exceeded *)

type response = { rs_id : int; rs_body : resp_body }

(* --- encoding (hand-rolled, like the rest of the repo's JSON output) -------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
       match ch with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\r' -> Buffer.add_string b "\\r"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jstr s = "\"" ^ json_escape s ^ "\""

(* %.17g round-trips every finite float, so encode/decode is lossless. *)
let jfloat f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let encode_request (r : request) : string =
  let b = Buffer.create 128 in
  (match r.rq_body with
   | Rewrite q ->
     Printf.bprintf b "{\"op\":\"rewrite\",\"id\":%d" r.rq_id;
     (match q.q_prog with
      | Some p -> Printf.bprintf b ",\"prog\":%s" (jstr p)
      | None -> ());
     (match q.q_digest with
      | Some d -> Printf.bprintf b ",\"digest\":%s" (jstr d)
      | None -> ());
     Printf.bprintf b ",\"config\":%s,\"seed\":%d,\"want_image\":%b}"
       (jstr q.q_config) q.q_seed q.q_want_image
   | Stats -> Printf.bprintf b "{\"op\":\"stats\",\"id\":%d}" r.rq_id
   | Ping -> Printf.bprintf b "{\"op\":\"ping\",\"id\":%d}" r.rq_id
   | Shutdown -> Printf.bprintf b "{\"op\":\"shutdown\",\"id\":%d}" r.rq_id);
  Buffer.contents b

let encode_response (r : response) : string =
  let b = Buffer.create 256 in
  (match r.rs_body with
   | R_rewrite rr ->
     Printf.bprintf b
       "{\"op\":\"rewrite\",\"ok\":true,\"id\":%d,\"prog\":%s,\"digest\":%s,\
        \"key\":%s,\"cache\":%s"
       r.rs_id (jstr rr.rr_prog) (jstr rr.rr_digest) (jstr rr.rr_key)
       (jstr (cache_status_to_string rr.rr_cache));
     (match rr.rr_image with
      | Some img -> Printf.bprintf b ",\"image\":%s" (jstr (hex_encode img))
      | None -> ());
     Printf.bprintf b ",\"image_digest\":%s,\"funcs\":[" (jstr rr.rr_image_digest);
     List.iteri
       (fun i (f, st) ->
          if i > 0 then Buffer.add_char b ',';
          Printf.bprintf b "[%s,%s]" (jstr f) (jstr st))
       rr.rr_funcs;
     Printf.bprintf b
       "],\"gadget_uses\":%d,\"unique_gadgets\":%d,\"queue_ms\":%s,\
        \"rewrite_ms\":%s}"
       rr.rr_gadget_uses rr.rr_unique_gadgets (jfloat rr.rr_queue_ms)
       (jfloat rr.rr_rewrite_ms)
   | R_stats st ->
     Printf.bprintf b
       "{\"op\":\"stats\",\"ok\":true,\"id\":%d,\"uptime_s\":%s,\"jobs\":%d,\
        \"queue_depth\":%d,\"inflight\":%d,\"requests\":%d,\"completed\":%d,\
        \"hits\":%d,\"misses\":%d,\"coalesced\":%d,\"shed\":%d,\"expired\":%d,\
        \"errors\":%d,\"throughput_rps\":%s,\"hit_rate\":%s,\"p50_ms\":%s,\
        \"p90_ms\":%s,\"p99_ms\":%s,\"cache_entries\":%d,\"cache_bytes\":%d}"
       r.rs_id (jfloat st.st_uptime_s) st.st_jobs st.st_queue_depth
       st.st_inflight st.st_requests st.st_completed st.st_hits st.st_misses
       st.st_coalesced st.st_shed st.st_expired st.st_errors
       (jfloat st.st_throughput_rps) (jfloat st.st_hit_rate)
       (jfloat st.st_p50_ms) (jfloat st.st_p90_ms) (jfloat st.st_p99_ms)
       st.st_cache_entries st.st_cache_bytes
   | R_pong -> Printf.bprintf b "{\"op\":\"pong\",\"ok\":true,\"id\":%d}" r.rs_id
   | R_bye -> Printf.bprintf b "{\"op\":\"bye\",\"ok\":true,\"id\":%d}" r.rs_id
   | R_error e ->
     Printf.bprintf b "{\"op\":\"error\",\"ok\":false,\"id\":%d,\"code\":%d,\"error\":%s}"
       r.rs_id e.code (jstr e.msg));
  Buffer.contents b

(* --- decoding (Obs.Json) ---------------------------------------------------- *)

let jmem k j = Obs.Json.member k j

let jget_str k j =
  match Option.bind (jmem k j) Obs.Json.to_string with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing or non-string field %S" k)

let jget_int_opt k j =
  Option.map int_of_float (Option.bind (jmem k j) Obs.Json.to_float)

let jget_int k j =
  match jget_int_opt k j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or non-numeric field %S" k)

let jget_float k j =
  match Option.bind (jmem k j) Obs.Json.to_float with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or non-numeric field %S" k)

let jget_bool_opt k j =
  match jmem k j with Some (Obs.Json.Bool b) -> Some b | _ -> None

let ( let* ) = Result.bind

let decode_request (payload : string) : (request, string) result =
  let* j = Obs.Json.parse payload in
  let* () =
    match j with
    | Obs.Json.Obj _ -> Ok ()
    | _ -> Error "request is not a JSON object"
  in
  let* op = jget_str "op" j in
  let id = Option.value ~default:0 (jget_int_opt "id" j) in
  match op with
  | "rewrite" ->
    let* config = jget_str "config" j in
    let seed = Option.value ~default:1 (jget_int_opt "seed" j) in
    let want = Option.value ~default:false (jget_bool_opt "want_image" j) in
    let prog = Option.bind (jmem "prog" j) Obs.Json.to_string in
    let digest = Option.bind (jmem "digest" j) Obs.Json.to_string in
    Ok { rq_id = id;
         rq_body = Rewrite { q_prog = prog; q_digest = digest;
                             q_config = config; q_seed = seed;
                             q_want_image = want } }
  | "stats" -> Ok { rq_id = id; rq_body = Stats }
  | "ping" -> Ok { rq_id = id; rq_body = Ping }
  | "shutdown" -> Ok { rq_id = id; rq_body = Shutdown }
  | op -> Error (Printf.sprintf "unknown op %S" op)

let decode_funcs j =
  match Option.bind (jmem "funcs" j) Obs.Json.to_list with
  | None -> Error "missing funcs array"
  | Some items ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | Obs.Json.Arr [ Obs.Json.Str f; Obs.Json.Str st ] :: rest ->
        go ((f, st) :: acc) rest
      | _ -> Error "malformed funcs entry"
    in
    go [] items

let decode_response (payload : string) : (response, string) result =
  let* j = Obs.Json.parse payload in
  let* op = jget_str "op" j in
  let id = Option.value ~default:0 (jget_int_opt "id" j) in
  match op with
  | "rewrite" ->
    let* prog = jget_str "prog" j in
    let* digest = jget_str "digest" j in
    let* key = jget_str "key" j in
    let* cache_s = jget_str "cache" j in
    let* cache =
      match cache_status_of_string cache_s with
      | Some c -> Ok c
      | None -> Error (Printf.sprintf "bad cache status %S" cache_s)
    in
    let* image =
      match Option.bind (jmem "image" j) Obs.Json.to_string with
      | None -> Ok None
      | Some hex ->
        (match hex_decode hex with
         | Ok raw -> Ok (Some raw)
         | Error m -> Error ("bad image payload: " ^ m))
    in
    let* image_digest = jget_str "image_digest" j in
    let* funcs = decode_funcs j in
    let* uses = jget_int "gadget_uses" j in
    let* uniq = jget_int "unique_gadgets" j in
    let* queue_ms = jget_float "queue_ms" j in
    let* rewrite_ms = jget_float "rewrite_ms" j in
    Ok { rs_id = id;
         rs_body = R_rewrite { rr_prog = prog; rr_digest = digest; rr_key = key;
                               rr_cache = cache; rr_image = image;
                               rr_image_digest = image_digest; rr_funcs = funcs;
                               rr_gadget_uses = uses; rr_unique_gadgets = uniq;
                               rr_queue_ms = queue_ms; rr_rewrite_ms = rewrite_ms } }
  | "stats" ->
    let* uptime = jget_float "uptime_s" j in
    let* jobs = jget_int "jobs" j in
    let* qd = jget_int "queue_depth" j in
    let* infl = jget_int "inflight" j in
    let* reqs = jget_int "requests" j in
    let* comp = jget_int "completed" j in
    let* hits = jget_int "hits" j in
    let* misses = jget_int "misses" j in
    let* coal = jget_int "coalesced" j in
    let* shed = jget_int "shed" j in
    let* expired = jget_int "expired" j in
    let* errors = jget_int "errors" j in
    let* rps = jget_float "throughput_rps" j in
    let* hr = jget_float "hit_rate" j in
    let* p50 = jget_float "p50_ms" j in
    let* p90 = jget_float "p90_ms" j in
    let* p99 = jget_float "p99_ms" j in
    let* ce = jget_int "cache_entries" j in
    let* cb = jget_int "cache_bytes" j in
    Ok { rs_id = id;
         rs_body = R_stats { st_uptime_s = uptime; st_jobs = jobs;
                             st_queue_depth = qd; st_inflight = infl;
                             st_requests = reqs; st_completed = comp;
                             st_hits = hits; st_misses = misses;
                             st_coalesced = coal; st_shed = shed;
                             st_expired = expired; st_errors = errors;
                             st_throughput_rps = rps; st_hit_rate = hr;
                             st_p50_ms = p50; st_p90_ms = p90; st_p99_ms = p99;
                             st_cache_entries = ce; st_cache_bytes = cb } }
  | "pong" -> Ok { rs_id = id; rs_body = R_pong }
  | "bye" -> Ok { rs_id = id; rs_body = R_bye }
  | "error" ->
    let* code = jget_int "code" j in
    let* msg = jget_str "error" j in
    Ok { rs_id = id; rs_body = R_error { code; msg } }
  | op -> Error (Printf.sprintf "unknown op %S" op)
