(* The one-shot rewrite entry point, shared by the CLI, the daemon, the
   check driver and the tests.

   Three things every consumer previously duplicated live here once:

   - the *program registry*: every built-in rewrite target (the toy fact
     program, the base64 sample, the deployability corpus, the ten CLBG
     benchmarks), each with its image builder, the function list to
     obfuscate, and — where the program is meant to be executed — an entry
     function and default argument;

   - *config naming*: the bijection between Table I / Table II
     configuration names ("plain", "rop0.25", "rop1.0+p2+gc") and
     [Ropc.Config.t] values, in both directions, so a config travels over
     the wire and through cache keys as its name;

   - the *warm table*: compiled images, their digests, and prepared
     [Ropc.Rewriter.context]s keyed by program name.  Compilation and the
     found-gadget scan are config- and seed-independent, so a resident
     process pays them once per program; [rewrite] then runs only the
     per-request work.  A fresh warm table per call ([one_shot]) reproduces
     the cold CLI exactly — same entry, same bytes — which is what the
     byte-identity tests lean on. *)

type entry = {
  e_name : string;
  e_build : unit -> Image.t;
  e_funcs : string list;          (* functions the rewriter obfuscates *)
  e_run : (string * int64) option; (* entry function + default argument, for
                                      consumers that execute the program *)
}

let fact_program () =
  let open Minic.Ast in
  program
    [ func ~params:[ "n" ] ~locals:[ "r"; "i" ] "main"
        [ set "r" (c 1);
          For (set "i" (c 1), Bin (Les, v "i", v "n"),
               set "i" (Bin (Add, v "i", c 1)),
               [ set "r" (Bin (Mul, v "r", v "i")) ]);
          Return (v "r") ] ]

let registry () : entry list =
  [ { e_name = "fact";
      e_build = (fun () -> Minic.Codegen.compile (fact_program ()));
      e_funcs = [ "main" ]; e_run = Some ("main", 8L) };
    { e_name = "corpus";
      e_build = Minic.Corpus.compile;
      e_funcs = Minic.Corpus.all_names; e_run = None };
    { e_name = "base64";
      e_build = (fun () -> Minic.Codegen.compile (Minic.Programs.base64_program ()));
      e_funcs = [ "b64_check"; "b64_encode" ]; e_run = Some ("b64_check", 8L) } ]
  @ List.map
      (fun (name, prog, fns, arg) ->
         { e_name = name;
           e_build = (fun () -> Minic.Codegen.compile prog);
           e_funcs = fns; e_run = Some ("bench", arg) })
      Minic.Clbg.all

let names () = List.map (fun e -> e.e_name) (registry ())

let find name = List.find_opt (fun e -> e.e_name = name) (registry ())

(* --- config naming ---------------------------------------------------------- *)

(* Table I feature matrix plus the Table II k sweep (formerly ropcheck's). *)
let config_matrix seed =
  [ ("plain", Ropc.Config.plain ~seed ());
    ("rop0", Ropc.Config.rop_k ~seed 0.0);
    ("rop0.05", Ropc.Config.rop_k ~seed 0.05);
    ("rop0.25", Ropc.Config.rop_k ~seed 0.25);
    ("rop0.5", Ropc.Config.rop_k ~seed 0.5);
    ("rop0.75", Ropc.Config.rop_k ~seed 0.75);
    ("rop1.0", Ropc.Config.rop_k ~seed 1.0);
    ("rop1.0+p2", Ropc.Config.rop_k ~seed ~p2:true 1.0);
    ("rop1.0+gc", Ropc.Config.rop_k ~seed ~confusion:true 1.0);
    ("rop1.0+p2+gc", Ropc.Config.rop_k ~seed ~p2:true ~confusion:true 1.0);
    (* ROPfuscator layers on top of the Table I/II base configs *)
    ("rop0.5+oc", Ropc.Config.rop_k ~seed ~opaque:true 0.5);
    ("rop0.5+ih", Ropc.Config.rop_k ~seed ~hiding:true 0.5);
    ("rop0.5+oc+ih", Ropc.Config.rop_k ~seed ~opaque:true ~hiding:true 0.5);
    ("rop0.5+oc+ih+pf",
     Ropc.Config.rop_k ~seed ~opaque:true ~hiding:true ~pf:true 0.5);
    ("rop1.0+p2+gc+oc+ih",
     Ropc.Config.rop_k ~seed ~p2:true ~confusion:true ~opaque:true
       ~hiding:true 1.0) ]

let matrix_names () = List.map fst (config_matrix 1)

(* Parse a configuration name: "plain", or "ropK" (K the P3 coverage
   fraction) with "+p2" / "+gc" feature suffixes and "+oc" / "+ih" / "+pf"
   ROPfuscator-layer suffixes in any order.  Accepts the exact vocabulary
   [config_name] emits, so names built from CLI flags, cache keys and wire
   requests all resolve to identical configs. *)
let config_of_name ~seed name : (Ropc.Config.t, string) result =
  match String.split_on_char '+' name with
  | [] | [ "" ] -> Error "empty config name"
  | base :: feats ->
    let p2 = ref false and gc = ref false in
    let oc = ref false and ih = ref false and pf = ref false in
    let bad = ref None in
    List.iter
      (fun f ->
         match f with
         | "p2" -> p2 := true
         | "gc" -> gc := true
         | "oc" -> oc := true
         | "ih" -> ih := true
         | "pf" -> pf := true
         | f -> if !bad = None then bad := Some f)
      feats;
    (match !bad with
     | Some f -> Error (Printf.sprintf "unknown feature %S in config %S" f name)
     | None ->
       if base = "plain" then
         if !p2 || !gc || !oc || !ih || !pf then
           Error "config \"plain\" takes no features"
         else Ok (Ropc.Config.plain ~seed ())
       else if String.length base > 3 && String.sub base 0 3 = "rop" then
         match float_of_string_opt (String.sub base 3 (String.length base - 3)) with
         | Some k when k >= 0.0 && k <= 1.0 ->
           Ok
             (Ropc.Config.rop_k ~seed ~p2:!p2 ~confusion:!gc ~opaque:!oc
                ~hiding:!ih ~pf:!pf k)
         | Some _ -> Error (Printf.sprintf "coverage out of [0,1] in config %S" name)
         | None -> Error (Printf.sprintf "bad coverage fraction in config %S" name)
       else Error (Printf.sprintf "unknown config %S" name))

(* The name for a flag combination, normalised so "%g" prints "rop0.25",
   "rop1" prints as "rop1" — callers wanting the canonical matrix names
   should pass the matrix's own k values. *)
let config_name ?(p2 = false) ?(confusion = false) ?(opaque = false)
    ?(hiding = false) ?(pf = false) ~plain k =
  if plain then "plain"
  else
    Printf.sprintf "rop%g%s%s%s%s%s" k
      (if p2 then "+p2" else "")
      (if confusion then "+gc" else "")
      (if opaque then "+oc" else "")
      (if hiding then "+ih" else "")
      (if pf then "+pf" else "")

(* --- warm state ------------------------------------------------------------- *)

type warm = {
  wt_tbl : (string, string * Ropc.Rewriter.context) Hashtbl.t;
      (* program name -> (input image digest, prepared context) *)
}

let warm () = { wt_tbl = Hashtbl.create 16 }

let context_of (w : warm) name : (string * Ropc.Rewriter.context, string) result =
  match Hashtbl.find_opt w.wt_tbl name with
  | Some v -> Ok v
  | None ->
    (match find name with
     | None ->
       Error (Printf.sprintf "unknown program %S (available: %s)" name
                (String.concat ", " (names ())))
     | Some e ->
       let img = Obs.Trace.with_span "serve.compile" e.e_build in
       let digest = Image.digest img in
       let ctx = Ropc.Rewriter.prepare img ~functions:e.e_funcs in
       Hashtbl.replace w.wt_tbl name (digest, ctx);
       Ok (digest, ctx))

let digest_of w name = Result.map fst (context_of w name)

(* --- the rewrite product ---------------------------------------------------- *)

(* Cache key: every parameter that affects the rewritten bytes.  The input
   image digest (not the program name) is the identity, so two names for
   the same bytes share entries and a changed builder invalidates them. *)
let key ~digest ~config ~seed =
  Printf.sprintf "serve/v1|%s|%s|seed=%d" digest config seed

type spec = {
  sp_prog : string;
  sp_config : string;
  sp_seed : int;
}

let spec_key w (s : spec) : (string * string, string) result =
  Result.map
    (fun digest -> (digest, key ~digest ~config:s.sp_config ~seed:s.sp_seed))
    (digest_of w s.sp_prog)

(* Marshal-plain product of one rewrite: what travels over the worker pipe,
   sits in the shard cache, and backs a protocol reply.  Deliberately free
   of timings — identical inputs must produce identical artifacts. *)
type artifact = {
  a_prog : string;
  a_digest : string;            (* input image digest *)
  a_key : string;
  a_image : string;             (* Image.serialize of the rewritten image *)
  a_image_digest : string;
  a_funcs : (string * string) list;
  a_uses : int;                 (* A of Table III *)
  a_uniq : int;                 (* B of Table III *)
}

let func_status : Ropc.Rewriter.func_result -> string = function
  | Ok st ->
    Printf.sprintf "ok chain=0x%Lx bytes=%d blocks=%d points=%d"
      st.Ropc.Rewriter.fs_chain_addr st.Ropc.Rewriter.fs_chain_bytes
      st.Ropc.Rewriter.fs_blocks st.Ropc.Rewriter.fs_points
  | Error e -> "failed: " ^ Ropc.Rewriter.failure_to_string e

let rewrite (w : warm) (s : spec) : (artifact, string) result =
  match config_of_name ~seed:s.sp_seed s.sp_config with
  | Error e -> Error e
  | Ok config ->
    (match context_of w s.sp_prog with
     | Error e -> Error e
     | Ok (digest, ctx) ->
       let r =
         Obs.Trace.with_span "serve.rewrite" (fun () ->
             Ropc.Rewriter.rewrite_with ctx ~config)
       in
       let ser = Image.serialize r.Ropc.Rewriter.image in
       Ok { a_prog = s.sp_prog;
            a_digest = digest;
            a_key = key ~digest ~config:s.sp_config ~seed:s.sp_seed;
            a_image = ser;
            a_image_digest = Digest.to_hex (Digest.string ser);
            a_funcs =
              List.map (fun (f, res) -> (f, func_status res))
                r.Ropc.Rewriter.funcs;
            a_uses = r.Ropc.Rewriter.total_gadget_uses;
            a_uniq = r.Ropc.Rewriter.unique_gadgets })

(* Cold one-shot: a fresh warm table per call, i.e. exactly what the CLI
   does — compile, scan, rewrite.  The serial baseline of BENCH_serve. *)
let one_shot (s : spec) : (artifact, string) result = rewrite (warm ()) s

(* Full rewriter result (image and audit included) through the same naming
   path, for consumers that need more than the flat artifact (CLI
   execution, verifier passes). *)
let rewrite_full (w : warm) (s : spec) : (Ropc.Rewriter.result, string) result =
  match config_of_name ~seed:s.sp_seed s.sp_config with
  | Error e -> Error e
  | Ok config ->
    (match context_of w s.sp_prog with
     | Error e -> Error e
     | Ok (_, ctx) -> Ok (Ropc.Rewriter.rewrite_with ctx ~config))
