(* Width arithmetic and flag formulas shared by the concrete stepper.

   All formulas are bitwise so that the symbolic engines (lib/symex) can
   mirror them term-for-term; differential tests in test/ check the two
   against each other on random operands. *)

open X86.Isa

let mask = function
  | W8 -> 0xFFL
  | W16 -> 0xFFFFL
  | W32 -> 0xFFFFFFFFL
  | W64 -> -1L

let truncate w v = Int64.logand v (mask w)

let sign_bit w v =
  Int64.logand (Int64.shift_right_logical v (width_bits w - 1)) 1L = 1L

(* Sign-extend a [w]-wide value to 64 bits. *)
let sign_extend w v =
  match w with
  | W64 -> v
  | _ ->
    let bits = width_bits w in
    let shifted = Int64.shift_left v (64 - bits) in
    Int64.shift_right shifted (64 - bits)

(* PF: even parity of the low byte.  The stepper updates PF on every ALU
   retire, so the popcount loop is replaced by a 256-entry table computed
   once at load time ('\001' = even parity). *)
let parity_table =
  String.init 256 (fun b ->
      let rec pop acc b = if b = 0 then acc else pop (acc + (b land 1)) (b lsr 1) in
      if pop 0 b land 1 = 0 then '\001' else '\000')

let parity v =
  String.unsafe_get parity_table (Int64.to_int v land 0xFF) = '\001'

type flags = { cf : bool; zf : bool; sf : bool; o_f : bool; pf : bool }

let flags_zsp w r = (truncate w r = 0L, sign_bit w r, parity r)

(* Carry-out of r = a + b (+carry), all masked to width w: standard
   bitwise formula, independent of how r was computed. *)
let carry_out w a b r =
  let m = Int64.logor (Int64.logand a b)
            (Int64.logand (Int64.logor a b) (Int64.lognot r)) in
  sign_bit w m

(* Borrow-out of r = a - b (-borrow). *)
let borrow_out w a b r =
  let m = Int64.logor (Int64.logand (Int64.lognot a) b)
            (Int64.logand (Int64.logor (Int64.lognot a) b) r) in
  sign_bit w m

let overflow_add w a b r =
  sign_bit w (Int64.logand (Int64.logxor a r) (Int64.logxor b r))

let overflow_sub w a b r =
  sign_bit w (Int64.logand (Int64.logxor a b) (Int64.logxor a r))

(* Unsigned and signed high halves of a 64x64 multiply. *)
let mulhi_u a b =
  let lo32 v = Int64.logand v 0xFFFFFFFFL in
  let hi32 v = Int64.shift_right_logical v 32 in
  let al = lo32 a and ah = hi32 a and bl = lo32 b and bh = hi32 b in
  let ll = Int64.mul al bl in
  let lh = Int64.mul al bh in
  let hl = Int64.mul ah bl in
  let hh = Int64.mul ah bh in
  let mid = Int64.add (Int64.add (hi32 ll) (lo32 lh)) (lo32 hl) in
  Int64.add (Int64.add hh (hi32 mid)) (Int64.add (hi32 lh) (hi32 hl))

let mulhi_s a b =
  (* signed high = unsigned high - (a<0 ? b : 0) - (b<0 ? a : 0) *)
  let h = mulhi_u a b in
  let h = if Int64.compare a 0L < 0 then Int64.sub h b else h in
  if Int64.compare b 0L < 0 then Int64.sub h a else h

(* Quotient does not fit in 64 bits.  Like Division_by_zero this is a typed
   condition the stepper converts into a machine fault (#DE), so it reaches
   the difftest oracle as a termination class instead of escaping as a bare
   Failure. *)
exception Div_overflow

(* 128-by-64 unsigned division of hi:lo by d.  Returns (quotient, remainder).
   Raises Division_by_zero when d = 0 and Div_overflow on quotient
   overflow. *)
let divmod_u128 hi lo d =
  if d = 0L then raise Division_by_zero;
  if Int64.unsigned_compare hi d >= 0 then raise Div_overflow;
  (* bit-by-bit long division *)
  let q = ref 0L and r = ref hi in
  for i = 63 downto 0 do
    let bit = Int64.logand (Int64.shift_right_logical lo i) 1L in
    let r' = Int64.logor (Int64.shift_left !r 1) bit in
    (* detect shift-out of r's top bit: r >= 2^63 before the shift *)
    let shifted_out = Int64.compare !r 0L < 0 in
    if shifted_out || Int64.unsigned_compare r' d >= 0 then begin
      r := Int64.sub r' d;
      q := Int64.logor !q (Int64.shift_left 1L i)
    end else
      r := r'
  done;
  (!q, !r)

let neg128 hi lo =
  let lo' = Int64.neg lo in
  let hi' = Int64.lognot hi in
  let hi' = if lo' = 0L then Int64.add hi' 1L else hi' in
  (hi', lo')

(* Signed 128-by-64 division with x86 idiv semantics. *)
let divmod_s128 hi lo d =
  if d = 0L then raise Division_by_zero;
  let num_neg = Int64.compare hi 0L < 0 in
  let d_neg = Int64.compare d 0L < 0 in
  let hi, lo = if num_neg then neg128 hi lo else (hi, lo) in
  let dm = if d_neg then Int64.neg d else d in
  let q, r = divmod_u128 hi lo dm in
  let q = if num_neg <> d_neg then Int64.neg q else q in
  let r = if num_neg then Int64.neg r else r in
  (* overflow check: signed quotient must fit 64 bits *)
  if num_neg <> d_neg then begin
    if Int64.compare q 0L > 0 then raise Div_overflow
  end else if Int64.compare q 0L < 0 then raise Div_overflow;
  (q, r)

(* Evaluate a condition code against a flag record. *)
let cc_holds (f : flags) = function
  | O -> f.o_f | NO -> not f.o_f
  | B -> f.cf | AE -> not f.cf
  | E -> f.zf | NE -> not f.zf
  | BE -> f.cf || f.zf | A -> not (f.cf || f.zf)
  | S -> f.sf | NS -> not f.sf
  | P -> f.pf | NP -> not f.pf
  | L -> f.sf <> f.o_f | GE -> f.sf = f.o_f
  | LE -> f.zf || f.sf <> f.o_f | G -> not f.zf && f.sf = f.o_f
