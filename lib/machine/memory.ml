(* Sparse paged byte-addressable memory.

   Pages are allocated on first write (or on explicit [map]).  Reading an
   unmapped byte raises {!Fault}: wild chain executions (e.g. the intentional
   RSP corruption of predicate P2 under blind branch flipping) must terminate
   the enclosing exploration rather than silently read zeros.

   Two execution-speed mechanisms live here because every consumer of the
   machine benefits from them:

   - Accesses that stay inside one page resolve the page once — through a
     one-entry last-page cache, then a specialized int-keyed table — and use
     the [Bytes] little-endian accessors instead of a byte-at-a-time loop.
     Page-straddling and odd-sized accesses fall back to the byte loop.
   - [code_version] counts writes into pages the executor has decoded
     instructions from ([note_code]).  {!Exec} snapshots the counter when it
     fills its decode/translation caches and flushes them when it moves, so
     self-modifying or patched code (rewriter immediates, P1 residues,
     difftest wild stores) executes the new bytes instead of stale decodes.
     Code marks are sticky for the lifetime of the memory: clearing them on
     flush would silently break any second executor sharing this memory. *)

exception Fault of int64 * string

let page_bits = 12
let page_size = 1 lsl page_bits

type page = {
  data : bytes;
  mutable is_code : bool;   (* instructions were decoded from this page *)
}

module Itbl = Util.Itbl

type t = {
  pages : page Itbl.t;                           (* keyed by page index *)
  mutable mapped_ranges : (int64 * int64) list;  (* inclusive start, exclusive end *)
  mutable code_version : int;   (* bumped on every write into a code page *)
  mutable last_idx : int;       (* one-entry page cache; min_int = empty *)
  mutable last_page : page;
}

let dummy_page = { data = Bytes.create 0; is_code = false }

let create () =
  { pages = Itbl.create 64; mapped_ranges = [];
    code_version = 0; last_idx = min_int; last_page = dummy_page }

let copy t =
  let pages = Itbl.create (Itbl.length t.pages) in
  Itbl.iter
    (fun k p -> Itbl.replace pages k { data = Bytes.copy p.data; is_code = p.is_code })
    t.pages;
  { pages; mapped_ranges = t.mapped_ranges; code_version = t.code_version;
    last_idx = min_int; last_page = dummy_page }

(* The page index is the address's top 52 bits: exact as an OCaml int even
   for addresses with the sign bit set, and injective over all of them. *)
let page_idx addr = Int64.to_int (Int64.shift_right_logical addr page_bits)
let offset_of addr = Int64.to_int (Int64.logand addr (Int64.of_int (page_size - 1)))

let code_version t = t.code_version

(* Pages ever touched (loaded, mapped, or lazily created by a write) — the
   working-set figure Exec.publish_metrics exports. *)
let page_count t = Itbl.length t.pages

(* Resolve the page of [addr] for reading; fills the one-entry cache.
   Kept out of the fast paths so they inline to a compare plus field load. *)
let read_page_slow t idx addr =
  match Itbl.find_opt t.pages idx with
  | Some p -> t.last_idx <- idx; t.last_page <- p; p
  | None -> raise (Fault (addr, "read of unmapped address"))

let read_page t addr =
  let idx = page_idx addr in
  if t.last_idx = idx then t.last_page else read_page_slow t idx addr

(* Same, but allocate a fresh zero page when unmapped (writes map lazily). *)
let write_page_slow t idx =
  match Itbl.find_opt t.pages idx with
  | Some p -> t.last_idx <- idx; t.last_page <- p; p
  | None ->
    let p = { data = Bytes.make page_size '\000'; is_code = false } in
    Itbl.replace t.pages idx p;
    t.last_idx <- idx; t.last_page <- p;
    p

let write_page t addr =
  let idx = page_idx addr in
  if t.last_idx = idx then t.last_page else write_page_slow t idx

let get_page_opt t addr =
  let idx = page_idx addr in
  if t.last_idx = idx then Some t.last_page else Itbl.find_opt t.pages idx

(* Pre-map [len] bytes starting at [addr] as zero-filled readable memory. *)
let map t addr len =
  if len > 0 then begin
    let first = page_idx addr in
    let last = page_idx (Int64.add addr (Int64.of_int (len - 1))) in
    for p = first to last do
      if not (Itbl.mem t.pages p) then
        Itbl.replace t.pages p { data = Bytes.make page_size '\000'; is_code = false }
    done;
    t.mapped_ranges <- (addr, Int64.add addr (Int64.of_int len)) :: t.mapped_ranges
  end

let is_mapped t addr = get_page_opt t addr <> None

(* Mark the pages holding [addr, addr+len) as code: subsequent writes into
   them bump [code_version].  Only mapped pages can hold decoded bytes. *)
let note_code t addr len =
  let len = max len 1 in
  let first = page_idx addr in
  let last = page_idx (Int64.add addr (Int64.of_int (len - 1))) in
  for p = first to last do
    match Itbl.find_opt t.pages p with
    | Some pg -> pg.is_code <- true
    | None -> ()
  done

let read_u8 t addr =
  let p = read_page t addr in
  Char.code (Bytes.unsafe_get p.data (offset_of addr))

let read_u8_opt t addr =
  match get_page_opt t addr with
  | Some p -> Some (Char.code (Bytes.get p.data (offset_of addr)))
  | None -> None

let write_u8 t addr v =
  let p = write_page t addr in
  if p.is_code then t.code_version <- t.code_version + 1;
  Bytes.unsafe_set p.data (offset_of addr) (Char.unsafe_chr (v land 0xff))

(* Little-endian load of [n] bytes (1, 2, 4 or 8), byte-loop reference. *)
let read_slow t addr n =
  let r = ref 0L in
  for i = n - 1 downto 0 do
    let byte = read_u8 t (Int64.add addr (Int64.of_int i)) in
    r := Int64.logor (Int64.shift_left !r 8) (Int64.of_int byte)
  done;
  !r

let read t addr n =
  let off = offset_of addr in
  if off + n <= page_size then
    let p = read_page t addr in
    match n with
    | 8 -> Bytes.get_int64_le p.data off
    | 4 ->
      Int64.logand (Int64.of_int32 (Bytes.get_int32_le p.data off)) 0xFFFFFFFFL
    | 1 -> Int64.of_int (Char.code (Bytes.unsafe_get p.data off))
    | 2 -> Int64.of_int (Bytes.get_uint16_le p.data off)
    | _ -> read_slow t addr n
  else read_slow t addr n

(* Little-endian store of the low [n] bytes of [v], byte-loop reference. *)
let write_slow t addr n v =
  for i = 0 to n - 1 do
    let byte = Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff in
    write_u8 t (Int64.add addr (Int64.of_int i)) byte
  done

let write t addr n v =
  let off = offset_of addr in
  if off + n <= page_size then begin
    let p = write_page t addr in
    if p.is_code then t.code_version <- t.code_version + 1;
    match n with
    | 8 -> Bytes.set_int64_le p.data off v
    | 4 -> Bytes.set_int32_le p.data off (Int64.to_int32 v)
    | 1 -> Bytes.unsafe_set p.data off (Char.unsafe_chr (Int64.to_int v land 0xff))
    | 2 -> Bytes.set_uint16_le p.data off (Int64.to_int v land 0xffff)
    | _ -> write_slow t addr n v
  end
  else write_slow t addr n v

(* Cold continuations for the page-local fast paths that Exec compiles into
   its stack-op closures.  They take the page index and intra-page offset as
   immediate ints, so a hot caller whose address lives in an unboxed int64
   register never has to materialize the boxed address just to have a slow
   path to call; the faulting address is reconstructed exactly (the index is
   the address's top 52 bits, the offset its low 12). *)
let join_addr idx off =
  Int64.logor (Int64.shift_left (Int64.of_int idx) page_bits) (Int64.of_int off)

let read_page_cold t idx off =
  match Itbl.find_opt t.pages idx with
  | Some p -> t.last_idx <- idx; t.last_page <- p; p
  | None -> raise (Fault (join_addr idx off, "read of unmapped address"))

let read_straddle t idx off n = read_slow t (join_addr idx off) n
let write_straddle t idx off n v = write_slow t (join_addr idx off) n v

(* 8-byte accesses get dedicated entry points: they are the stack traffic of
   every push/pop/call/ret, which under ROP rewriting is most retired
   instructions, so they skip the size dispatch of [read]/[write] entirely. *)
let read_u64 t addr =
  let off = offset_of addr in
  let idx = page_idx addr in
  if off <= page_size - 8 then
    let p = if t.last_idx = idx then t.last_page else read_page_cold t idx off in
    Bytes.get_int64_le p.data off
  else read_straddle t idx off 8

let write_u64 t addr v =
  let off = offset_of addr in
  let idx = page_idx addr in
  if off <= page_size - 8 then begin
    let p = if t.last_idx = idx then t.last_page else write_page_slow t idx in
    if p.is_code then t.code_version <- t.code_version + 1;
    Bytes.set_int64_le p.data off v
  end
  else write_straddle t idx off 8 v

(* Copy a byte string into memory at [addr], mapping pages as needed.
   Blits page-sized chunks: image loading goes through here for every
   section, and a byte loop made it the dominant cost of short runs. *)
let store_bytes t addr (b : bytes) =
  let len = Bytes.length b in
  let pos = ref 0 in
  while !pos < len do
    let a = Int64.add addr (Int64.of_int !pos) in
    let off = offset_of a in
    let chunk = min (page_size - off) (len - !pos) in
    let p = write_page t a in
    if p.is_code then t.code_version <- t.code_version + 1;
    Bytes.blit b !pos p.data off chunk;
    pos := !pos + chunk
  done

(* Read up to [n] contiguous mapped bytes starting at [addr]; stops early at
   the first unmapped byte.  Used for instruction fetch windows, so it blits
   from at most two pages instead of probing the page table per byte. *)
let read_bytes_avail t addr n =
  let off = offset_of addr in
  let first = min n (page_size - off) in
  match get_page_opt t addr with
  | None -> Bytes.create 0
  | Some p ->
    let buf = Bytes.create n in
    Bytes.blit p.data off buf 0 first;
    if first >= n then buf
    else begin
      let addr' = Int64.add addr (Int64.of_int first) in
      match get_page_opt t addr' with
      | Some p' ->
        Bytes.blit p'.data 0 buf first (n - first);
        buf
      | None -> Bytes.sub buf 0 first
    end

let read_string t addr len =
  Bytes.to_string (read_bytes_avail t addr len)
