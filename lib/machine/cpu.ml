(* CPU state for the x64-lite machine. *)

open X86.Isa

(* Registers live in a flat 128-byte buffer, 8 bytes per register indexed by
   [Isa.reg_index], accessed with the little-endian [Bytes] primitives.  An
   [int64 array] would box every element: each computed register write would
   allocate, and each read would chase a pointer.  The buffer also gives the
   sub-width register writes (16/8-bit merges) single partial stores. *)
type t = {
  regs : Bytes.t;
  mutable cf : bool;
  mutable zf : bool;
  mutable sf : bool;
  mutable o_f : bool;
  mutable pf : bool;
  mem : Memory.t;
  mutable halted : bool;
  mutable steps : int;          (* instructions retired *)
}

let create mem = {
  regs = Bytes.make ((16 + 1) * 8) '\000';
  cf = false; zf = false; sf = false; o_f = false; pf = false;
  mem;
  halted = false;
  steps = 0;
}

let copy t = {
  regs = Bytes.copy t.regs;
  cf = t.cf; zf = t.zf; sf = t.sf; o_f = t.o_f; pf = t.pf;
  mem = Memory.copy t.mem;
  halted = t.halted;
  steps = t.steps;
}

let get t r = Bytes.get_int64_le t.regs (reg_index r lsl 3)
let set t r v = Bytes.set_int64_le t.regs (reg_index r lsl 3) v

(* The instruction pointer is the 17th slot of the register buffer rather
   than a [mutable int64] field: the execution engine stores to it on every
   retired instruction, and a boxed mutable field would cost a write-barrier
   call per store plus an allocation per computed control transfer. *)
let rip_off = 16 * 8
let rip t = Bytes.get_int64_le t.regs rip_off
let set_rip t v = Bytes.set_int64_le t.regs rip_off v

let flags t : Semantics.flags =
  { cf = t.cf; zf = t.zf; sf = t.sf; o_f = t.o_f; pf = t.pf }

(* Condition-code test against the live flag fields.  Same truth table as
   [Semantics.cc_holds], but without materializing a flags record: the
   execution engine evaluates a cc on every Jcc/Cmov/Setcc retired, which
   makes the record allocation of [flags] measurable on chain-heavy runs. *)
let cc_holds t (cc : cc) =
  match cc with
  | O -> t.o_f | NO -> not t.o_f
  | B -> t.cf | AE -> not t.cf
  | E -> t.zf | NE -> not t.zf
  | BE -> t.cf || t.zf | A -> not (t.cf || t.zf)
  | S -> t.sf | NS -> not t.sf
  | P -> t.pf | NP -> not t.pf
  | L -> t.sf <> t.o_f | GE -> t.sf = t.o_f
  | LE -> t.zf || t.sf <> t.o_f | G -> not t.zf && t.sf = t.o_f

let set_flags t (f : Semantics.flags) =
  t.cf <- f.cf; t.zf <- f.zf; t.sf <- f.sf; t.o_f <- f.o_f; t.pf <- f.pf

let pp fmt t =
  let r n = get t n in
  Format.fprintf fmt
    "rip=%Lx rax=%Lx rbx=%Lx rcx=%Lx rdx=%Lx rsi=%Lx rdi=%Lx rbp=%Lx rsp=%Lx@\n\
     r8=%Lx r9=%Lx r10=%Lx r11=%Lx r12=%Lx r13=%Lx r14=%Lx r15=%Lx cf=%b zf=%b sf=%b of=%b"
    (rip t) (r RAX) (r RBX) (r RCX) (r RDX) (r RSI) (r RDI) (r RBP) (r RSP)
    (r R8) (r R9) (r R10) (r R11) (r R12) (r R13) (r R14) (r R15)
    t.cf t.zf t.sf t.o_f
