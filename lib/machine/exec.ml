(* Concrete stepper for x64-lite.

   The only execution engine used by the obfuscated programs themselves; the
   symbolic/concolic engines in lib/symex mirror these semantics over
   expression values.  A decode cache keyed by absolute address makes repeated
   chain execution cheap (we assume no self-modifying code, the same
   limitation as the paper's rewriter, §IV-C). *)

open X86.Isa
module S = Semantics

exception Exec_fault of string

type exit_status =
  | Halted
  | Fault of string
  | Out_of_fuel

let pp_exit fmt = function
  | Halted -> Format.pp_print_string fmt "halted"
  | Fault m -> Format.fprintf fmt "fault: %s" m
  | Out_of_fuel -> Format.pp_print_string fmt "out of fuel"

(* --- operand access ------------------------------------------------- *)

let ea cpu (m : mem) =
  let b = match m.base with Some r -> Cpu.get cpu r | None -> 0L in
  let i =
    match m.index with
    | Some (r, sc) -> Int64.mul (Cpu.get cpu r) (Int64.of_int sc)
    | None -> 0L
  in
  Int64.add (Int64.add b i) m.disp

let read_operand cpu w = function
  | Reg r -> S.truncate w (Cpu.get cpu r)
  | Imm v -> S.truncate w v
  | Mem m -> Memory.read cpu.Cpu.mem (ea cpu m) (width_bytes w)

(* Register writes follow x86: 32-bit writes zero-extend, 8/16-bit merge. *)
let write_reg cpu w r v =
  match w with
  | W64 -> Cpu.set cpu r v
  | W32 -> Cpu.set cpu r (Int64.logand v 0xFFFFFFFFL)
  | W16 ->
    let old = Cpu.get cpu r in
    Cpu.set cpu r (Int64.logor (Int64.logand old (-65536L)) (Int64.logand v 0xFFFFL))
  | W8 ->
    let old = Cpu.get cpu r in
    Cpu.set cpu r (Int64.logor (Int64.logand old (-256L)) (Int64.logand v 0xFFL))

let write_operand cpu w op v =
  match op with
  | Reg r -> write_reg cpu w r v
  | Mem m -> Memory.write cpu.Cpu.mem (ea cpu m) (width_bytes w) v
  | Imm _ -> raise (Exec_fault "write to immediate")

(* --- flag updates ---------------------------------------------------- *)

let set_zsp cpu w r =
  cpu.Cpu.zf <- S.truncate w r = 0L;
  cpu.Cpu.sf <- S.sign_bit w r;
  cpu.Cpu.pf <- S.parity r

let flags_add cpu w a b r =
  cpu.Cpu.cf <- S.carry_out w a b r;
  cpu.Cpu.o_f <- S.overflow_add w a b r;
  set_zsp cpu w r

let flags_sub cpu w a b r =
  cpu.Cpu.cf <- S.borrow_out w a b r;
  cpu.Cpu.o_f <- S.overflow_sub w a b r;
  set_zsp cpu w r

let flags_logic cpu w r =
  cpu.Cpu.cf <- false;
  cpu.Cpu.o_f <- false;
  set_zsp cpu w r

(* 64-bit specializations of the flag updates for the translated fast path:
   at full width [S.truncate] is the identity and [S.sign_bit] is a sign
   compare, so each formula collapses to straight-line int64 arithmetic. *)

let set_zsp64 cpu r =
  cpu.Cpu.zf <- r = 0L;
  cpu.Cpu.sf <- r < 0L;
  cpu.Cpu.pf <- S.parity r

let flags_add64 cpu a b r =
  cpu.Cpu.cf <-
    Int64.logor (Int64.logand a b)
      (Int64.logand (Int64.logor a b) (Int64.lognot r)) < 0L;
  cpu.Cpu.o_f <- Int64.logand (Int64.logxor a r) (Int64.logxor b r) < 0L;
  set_zsp64 cpu r

let flags_sub64 cpu a b r =
  cpu.Cpu.cf <-
    Int64.logor (Int64.logand (Int64.lognot a) b)
      (Int64.logand (Int64.logor (Int64.lognot a) b) r) < 0L;
  cpu.Cpu.o_f <- Int64.logand (Int64.logxor a b) (Int64.logxor a r) < 0L;
  set_zsp64 cpu r

let flags_logic64 cpu r =
  cpu.Cpu.cf <- false;
  cpu.Cpu.o_f <- false;
  set_zsp64 cpu r

(* --- stack helpers ---------------------------------------------------- *)

let push64 cpu v =
  let sp = Int64.sub (Cpu.get cpu RSP) 8L in
  Cpu.set cpu RSP sp;
  Memory.write_u64 cpu.Cpu.mem sp v

let pop64 cpu =
  let sp = Cpu.get cpu RSP in
  let v = Memory.read_u64 cpu.Cpu.mem sp in
  Cpu.set cpu RSP (Int64.add sp 8L);
  v

(* --- single instruction ----------------------------------------------- *)

let exec_alu cpu o w d s =
  let a = read_operand cpu w d in
  let b = read_operand cpu w s in
  match o with
  | Add ->
    let r = S.truncate w (Int64.add a b) in
    flags_add cpu w a b r;
    write_operand cpu w d r
  | Adc ->
    let c = if cpu.Cpu.cf then 1L else 0L in
    let r = S.truncate w (Int64.add (Int64.add a b) c) in
    flags_add cpu w a b r;
    write_operand cpu w d r
  | Sub ->
    let r = S.truncate w (Int64.sub a b) in
    flags_sub cpu w a b r;
    write_operand cpu w d r
  | Sbb ->
    let c = if cpu.Cpu.cf then 1L else 0L in
    let r = S.truncate w (Int64.sub (Int64.sub a b) c) in
    flags_sub cpu w a b r;
    write_operand cpu w d r
  | Cmp ->
    let r = S.truncate w (Int64.sub a b) in
    flags_sub cpu w a b r
  | And ->
    let r = Int64.logand a b in
    flags_logic cpu w r;
    write_operand cpu w d r
  | Or ->
    let r = Int64.logor a b in
    flags_logic cpu w r;
    write_operand cpu w d r
  | Xor ->
    let r = Int64.logxor a b in
    flags_logic cpu w r;
    write_operand cpu w d r
  | Test ->
    let r = Int64.logand a b in
    flags_logic cpu w r

let exec_unary cpu o w d =
  let a = read_operand cpu w d in
  match o with
  | Neg ->
    let r = S.truncate w (Int64.neg a) in
    flags_sub cpu w 0L a r;
    write_operand cpu w d r
  | Not ->
    (* no flag update, as on x86 *)
    write_operand cpu w d (S.truncate w (Int64.lognot a))
  | Inc ->
    let r = S.truncate w (Int64.add a 1L) in
    cpu.Cpu.o_f <- S.overflow_add w a 1L r;
    set_zsp cpu w r;
    write_operand cpu w d r
  | Dec ->
    let r = S.truncate w (Int64.sub a 1L) in
    cpu.Cpu.o_f <- S.overflow_sub w a 1L r;
    set_zsp cpu w r;
    write_operand cpu w d r

let exec_shift cpu o w d count =
  let a = read_operand cpu w d in
  let n =
    match count with
    | S_imm n -> n
    | S_cl -> Int64.to_int (Int64.logand (Cpu.get cpu RCX) 0xFFL)
  in
  let n = n land (if w = W64 then 63 else 31) in
  if n = 0 then ()  (* count 0: no flags, no write needed *)
  else begin
    let bits = width_bits w in
    match o with
    | Shl ->
      let r = S.truncate w (Int64.shift_left a n) in
      cpu.Cpu.cf <-
        (n <= bits && Int64.logand (Int64.shift_right_logical a (bits - n)) 1L = 1L);
      cpu.Cpu.o_f <- S.sign_bit w r <> cpu.Cpu.cf;
      set_zsp cpu w r;
      write_operand cpu w d r
    | Shr ->
      let r = Int64.shift_right_logical a n in
      cpu.Cpu.cf <- Int64.logand (Int64.shift_right_logical a (n - 1)) 1L = 1L;
      cpu.Cpu.o_f <- S.sign_bit w a;
      set_zsp cpu w r;
      write_operand cpu w d r
    | Sar ->
      let r = S.truncate w (Int64.shift_right (S.sign_extend w a) n) in
      cpu.Cpu.cf <-
        Int64.logand (Int64.shift_right (S.sign_extend w a) (min 63 (n - 1))) 1L = 1L;
      cpu.Cpu.o_f <- false;
      set_zsp cpu w r;
      write_operand cpu w d r
    | Rol ->
      let n = n mod bits in
      let r =
        if n = 0 then a
        else
          S.truncate w
            (Int64.logor (Int64.shift_left a n)
               (Int64.shift_right_logical (S.truncate w a) (bits - n)))
      in
      cpu.Cpu.cf <- Int64.logand r 1L = 1L;
      write_operand cpu w d r
    | Ror ->
      let n = n mod bits in
      let r =
        if n = 0 then a
        else
          S.truncate w
            (Int64.logor (Int64.shift_right_logical (S.truncate w a) n)
               (Int64.shift_left a (bits - n)))
      in
      cpu.Cpu.cf <- S.sign_bit w r;
      write_operand cpu w d r
  end

let exec_muldiv cpu o src =
  let v = read_operand cpu W64 src in
  let rax = Cpu.get cpu RAX in
  let rdx = Cpu.get cpu RDX in
  match o with
  | Mul ->
    let lo = Int64.mul rax v in
    let hi = S.mulhi_u rax v in
    Cpu.set cpu RAX lo;
    Cpu.set cpu RDX hi;
    let c = hi <> 0L in
    cpu.Cpu.cf <- c; cpu.Cpu.o_f <- c
  | Imul1 ->
    let lo = Int64.mul rax v in
    let hi = S.mulhi_s rax v in
    Cpu.set cpu RAX lo;
    Cpu.set cpu RDX hi;
    let c = hi <> Int64.shift_right lo 63 in
    cpu.Cpu.cf <- c; cpu.Cpu.o_f <- c
  | Div ->
    (match S.divmod_u128 rdx rax v with
     | q, r -> Cpu.set cpu RAX q; Cpu.set cpu RDX r
     | exception Division_by_zero -> raise (Exec_fault "divide by zero")
     | exception S.Div_overflow -> raise (Exec_fault "divide overflow"))
  | Idiv ->
    (match S.divmod_s128 rdx rax v with
     | q, r -> Cpu.set cpu RAX q; Cpu.set cpu RDX r
     | exception Division_by_zero -> raise (Exec_fault "divide by zero")
     | exception S.Div_overflow -> raise (Exec_fault "divide overflow"))

(* Execute [i]; [cpu.rip] has already been advanced past the instruction. *)
let exec_instr cpu i =
  match i with
  | Nop -> ()
  | Hlt -> cpu.Cpu.halted <- true
  | Lahf ->
    let b =
      (if cpu.Cpu.sf then 0x80 else 0)
      lor (if cpu.Cpu.zf then 0x40 else 0)
      lor (if cpu.Cpu.pf then 0x04 else 0)
      lor 0x02
      lor (if cpu.Cpu.cf then 0x01 else 0)
    in
    let old = Cpu.get cpu RAX in
    Cpu.set cpu RAX
      (Int64.logor
         (Int64.logand old (Int64.lognot 0xFF00L))
         (Int64.of_int (b lsl 8)))
  | Sahf ->
    let b = Int64.to_int (Int64.shift_right_logical (Cpu.get cpu RAX) 8) land 0xFF in
    cpu.Cpu.sf <- b land 0x80 <> 0;
    cpu.Cpu.zf <- b land 0x40 <> 0;
    cpu.Cpu.pf <- b land 0x04 <> 0;
    cpu.Cpu.cf <- b land 0x01 <> 0
  | Mov (w, d, s) ->
    let v = read_operand cpu w s in
    write_operand cpu w d v
  | Movzx (dw, sw, r, s) ->
    let v = read_operand cpu sw s in
    write_reg cpu dw r v
  | Movsx (dw, sw, r, s) ->
    let v = S.sign_extend sw (read_operand cpu sw s) in
    write_reg cpu dw r (S.truncate dw v)
  | Lea (r, m) -> Cpu.set cpu r (ea cpu m)
  | Push a ->
    let v = read_operand cpu W64 a in
    push64 cpu v
  | Pop d ->
    let v = pop64 cpu in
    write_operand cpu W64 d v
  | Alu (o, w, d, s) -> exec_alu cpu o w d s
  | Unary (o, w, d) -> exec_unary cpu o w d
  | Imul2 (w, r, s) ->
    let a = S.truncate w (Cpu.get cpu r) in
    let b = read_operand cpu w s in
    let full = Int64.mul (S.sign_extend w a) (S.sign_extend w b) in
    let r64 = S.truncate w full in
    let c = S.sign_extend w r64 <> full in
    cpu.Cpu.cf <- c; cpu.Cpu.o_f <- c;
    set_zsp cpu w r64;
    write_reg cpu w r r64
  | MulDiv (o, s) -> exec_muldiv cpu o s
  | Shift (o, w, d, c) -> exec_shift cpu o w d c
  | Cmov (cc, r, s) ->
    let v = read_operand cpu W64 s in
    if Cpu.cc_holds cpu cc then Cpu.set cpu r v
  | Setcc (cc, d) ->
    let v = if Cpu.cc_holds cpu cc then 1L else 0L in
    write_operand cpu W8 d v
  | Jmp (J_rel d) -> Cpu.set_rip cpu (Int64.add (Cpu.rip cpu) (Int64.of_int d))
  | Jmp (J_op a) -> Cpu.set_rip cpu (read_operand cpu W64 a)
  | Jcc (cc, d) ->
    if Cpu.cc_holds cpu cc then
      Cpu.set_rip cpu (Int64.add (Cpu.rip cpu) (Int64.of_int d))
  | Call (J_rel d) ->
    push64 cpu (Cpu.rip cpu);
    Cpu.set_rip cpu (Int64.add (Cpu.rip cpu) (Int64.of_int d))
  | Call (J_op a) ->
    let target = read_operand cpu W64 a in
    push64 cpu (Cpu.rip cpu);
    Cpu.set_rip cpu (target)
  | Ret -> Cpu.set_rip cpu (pop64 cpu)
  | Leave ->
    Cpu.set cpu RSP (Cpu.get cpu RBP);
    Cpu.set cpu RBP (pop64 cpu)
  | Xchg (w, a, b) ->
    let va = read_operand cpu w a in
    let vb = read_operand cpu w b in
    write_operand cpu w a vb;
    write_operand cpu w b va

(* --- fetch/decode with cache ------------------------------------------ *)

module ITbl = Util.Itbl

(* A translated basic block: one closure per instruction, straight-line up
   to and including the first ret/jmp/jcc/call/hlt.  Each closure advances
   [rip] past its instruction before doing anything else, so a fault or a
   mid-block cache invalidation leaves the CPU in exactly the state the
   reference stepper would have produced. *)
type block = {
  b_ops : (Cpu.t -> unit) array;
  b_writes : bool;
  (* whether any op can write memory: only those can bump the memory's code
     version, so blocks without them run with no mid-block staleness checks *)
  b_len : int;
  (* instructions retired by running every slot: non-writing blocks may fuse
     the trailing (op, ret) pair into one slot, so slots <= b_len.  Writing
     blocks are never fused (slots = b_len): their run loop stops on the
     per-op staleness check and must count retires per slot. *)
}

(* [Fast] dispatches through the block-translation cache; [Ref] re-fetches
   every instruction through the per-instruction decode cache.  The two are
   differentially tested against each other (test/test_exec_fast.ml, the
   difftest --engine both oracle); Ref is the semantic baseline. *)
type engine = Fast | Ref

let empty_block = { b_ops = [||]; b_writes = false; b_len = 0 }

(* Direct-mapped front of the block cache: dispatch happens once per 1-3
   retired instructions on gadget-dense chains, so even the specialized
   hashtable probe shows up.  A key/value array pair indexed by the low rip
   bits turns the common re-dispatch into two array loads and a compare;
   collisions simply fall through to the hashtable. *)
let dm_bits = 11
let dm_size = 1 lsl dm_bits
let dm_mask = dm_size - 1

type t = {
  cpu : Cpu.t;
  decode_cache : (X86.Isa.instr * int) ITbl.t;
  block_cache : block ITbl.t;
  dm_keys : int array;           (* min_int = empty slot *)
  dm_blocks : block array;
  mutable cache_version : int;   (* Memory.code_version the caches match *)
  mutable engine : engine;
  mutable on_step : (Cpu.t -> int64 -> X86.Isa.instr -> unit) option;
  (* Lifetime counters, exported by [publish_metrics].  Plain int fields:
     the dispatch loop pays an unboxed add or two, never a registry probe,
     and the per-retire loops ([exec_ops]/[exec_ops_nw]) stay untouched. *)
  mutable n_dispatches : int;    (* fast-engine block dispatches *)
  mutable n_dm_misses : int;     (* dispatches that fell past the dm front *)
  mutable n_translated : int;    (* blocks compiled to closures *)
  mutable n_flushes : int;       (* wholesale cache invalidations *)
  mutable n_fused : int;         (* instructions retired through fused slots *)
  mutable n_decode_misses : int; (* ref-engine decode-cache fills *)
}

let make ?(engine = Fast) cpu =
  { cpu;
    decode_cache = ITbl.create 1024;
    block_cache = ITbl.create 256;
    dm_keys = Array.make dm_size min_int;
    dm_blocks = Array.make dm_size empty_block;
    cache_version = Memory.code_version cpu.Cpu.mem;
    engine;
    on_step = None;
    n_dispatches = 0; n_dm_misses = 0; n_translated = 0; n_flushes = 0;
    n_fused = 0; n_decode_misses = 0 }

(* Both caches hold derived views of code bytes; a write into any page we
   ever decoded from (Memory.note_code below) bumps the memory's version
   counter and invalidates them wholesale here.  Flushes are rare — the
   rewriter's patched immediates and difftest's wild stores, not the steady
   state — so a full reset beats precise per-address eviction. *)
let flush_caches t v =
  ITbl.reset t.decode_cache;
  ITbl.reset t.block_cache;
  Array.fill t.dm_keys 0 dm_size min_int;
  t.n_flushes <- t.n_flushes + 1;
  t.cache_version <- v

let sync_caches t =
  let v = Memory.code_version t.cpu.Cpu.mem in
  if v <> t.cache_version then flush_caches t v

(* Decode one instruction at [rip], no caching.  Marks the bytes as code so
   a later store into them bumps the memory's version counter. *)
let decode_raw t rip =
  let mem = t.cpu.Cpu.mem in
  let off = Memory.offset_of rip in
  let dec =
    (* When the whole 16-byte fetch window sits inside one page, decode
       straight out of the page bytes; only page-straddling windows pay for
       the copying fetch. *)
    if off + X86.Encode.max_instr_len <= Memory.page_size then
      match Memory.get_page_opt mem rip with
      | Some p -> X86.Decode.decode p.Memory.data off
      | None -> None
    else
      X86.Decode.decode (Memory.read_bytes_avail mem rip X86.Encode.max_instr_len) 0
  in
  match dec with
  | Some (i, len) ->
    Memory.note_code mem rip len;
    Some (i, len)
  | None -> None

(* Decode one instruction at [rip] through the cache.  Addresses fit OCaml's
   immediate ints (62 bits of usable address space), so the key is the rip
   itself and the table never hashes a boxed int64.  Only the reference
   stepper path fills this cache; block translation decodes each address
   once into closures, so caching the instruction view as well would just
   double the translation-time table traffic. *)
let decode_at t rip =
  let key = Int64.to_int rip in
  match ITbl.find_opt t.decode_cache key with
  | Some r -> Some r
  | None ->
    t.n_decode_misses <- t.n_decode_misses + 1;
    (match decode_raw t rip with
     | Some (i, len) as r ->
       ITbl.replace t.decode_cache key (i, len);
       r
     | None -> None)

let fetch t rip = sync_caches t; decode_at t rip

(* One step; raises Exec_fault / Memory.Fault on machine exceptions. *)
let step t =
  let cpu = t.cpu in
  let rip = (Cpu.rip cpu) in
  match fetch t rip with
  | None -> raise (Exec_fault (Printf.sprintf "invalid instruction at 0x%Lx" rip))
  | Some (i, len) ->
    (match t.on_step with Some f -> f cpu rip i | None -> ());
    Cpu.set_rip cpu (Int64.add rip (Int64.of_int len));
    exec_instr cpu i;
    cpu.Cpu.steps <- cpu.Cpu.steps + 1

(* --- block translation ------------------------------------------------- *)

(* Pre-resolved operand accessors: the operand shape, register index, mask
   and displacement are decided once at translation time, so the per-retire
   work is an array access or a page-local memory access. *)

(* Byte offset of a register inside the flat [Cpu.regs] buffer. *)
let reg_off r = reg_index r lsl 3

let ea_fn (m : mem) : Cpu.t -> int64 =
  match m.base, m.index with
  | None, None -> let d = m.disp in fun _ -> d
  | Some b, None ->
    let bo = reg_off b and d = m.disp in
    if d = 0L then (fun cpu -> Bytes.get_int64_le cpu.Cpu.regs bo)
    else fun cpu -> Int64.add (Bytes.get_int64_le cpu.Cpu.regs bo) d
  | None, Some (r, sc) ->
    let ro = reg_off r and sc = Int64.of_int sc and d = m.disp in
    fun cpu -> Int64.add (Int64.mul (Bytes.get_int64_le cpu.Cpu.regs ro) sc) d
  | Some b, Some (r, sc) ->
    let bo = reg_off b and ro = reg_off r
    and sc = Int64.of_int sc and d = m.disp in
    fun cpu ->
      Int64.add
        (Int64.add (Bytes.get_int64_le cpu.Cpu.regs bo)
           (Int64.mul (Bytes.get_int64_le cpu.Cpu.regs ro) sc))
        d

(* Sub-width register reads load just the low bytes (little-endian layout),
   so no masking is needed; sub-width writes are single partial stores with
   the x86 merge (8/16-bit) and zero-extend (32-bit) semantics built in. *)
let read_fn w (o : operand) : Cpu.t -> int64 =
  match o with
  | Reg r ->
    let i = reg_off r in
    (match w with
     | W64 -> fun cpu -> Bytes.get_int64_le cpu.Cpu.regs i
     | W32 ->
       fun cpu ->
         Int64.logand
           (Int64.of_int32 (Bytes.get_int32_le cpu.Cpu.regs i))
           0xFFFFFFFFL
     | W16 -> fun cpu -> Int64.of_int (Bytes.get_uint16_le cpu.Cpu.regs i)
     | W8 -> fun cpu -> Int64.of_int (Char.code (Bytes.unsafe_get cpu.Cpu.regs i)))
  | Imm v -> let v = S.truncate w v in fun _ -> v
  | Mem m ->
    let ea = ea_fn m in
    (match w with
     | W64 -> fun cpu -> Memory.read_u64 cpu.Cpu.mem (ea cpu)
     | _ ->
       let n = width_bytes w in
       fun cpu -> Memory.read cpu.Cpu.mem (ea cpu) n)

let write_fn w (o : operand) : Cpu.t -> int64 -> unit =
  match o with
  | Reg r ->
    let i = reg_off r in
    (match w with
     | W64 -> fun cpu v -> Bytes.set_int64_le cpu.Cpu.regs i v
     | W32 -> fun cpu v -> Bytes.set_int64_le cpu.Cpu.regs i (Int64.logand v 0xFFFFFFFFL)
     | W16 -> fun cpu v -> Bytes.set_uint16_le cpu.Cpu.regs i (Int64.to_int v land 0xFFFF)
     | W8 ->
       fun cpu v ->
         Bytes.unsafe_set cpu.Cpu.regs i (Char.unsafe_chr (Int64.to_int v land 0xFF)))
  | Mem m ->
    let ea = ea_fn m in
    (match w with
     | W64 -> fun cpu v -> Memory.write_u64 cpu.Cpu.mem (ea cpu) v
     | _ ->
       let n = width_bytes w in
       fun cpu v -> Memory.write cpu.Cpu.mem (ea cpu) n v)
  | Imm _ -> fun _ _ -> raise (Exec_fault "write to immediate")

let rsp_o = reg_index RSP lsl 3

(* Compile one instruction into a closure.  [next] is the address just past
   the instruction; every closure stores it to [rip] first, mirroring the
   reference stepper's fetch/advance/execute order so that faults observe
   the same CPU state under either engine.  Operand resolution, immediate
   truncation and relative-target arithmetic happen here, once. *)
let compile_instr (i : instr) ~(next : int64) : Cpu.t -> unit =
  match i with
  | Mov (W64, Reg d, Reg s) ->
    let dof = reg_off d and sof = reg_off s in
    fun cpu ->
      Cpu.set_rip cpu (next);
      let regs = cpu.Cpu.regs in
      Bytes.set_int64_le regs dof (Bytes.get_int64_le regs sof)
  | Mov (W64, Reg d, Imm v) ->
    let dof = reg_off d in
    fun cpu ->
      Cpu.set_rip cpu (next);
      Bytes.set_int64_le cpu.Cpu.regs dof v
  | Mov (W64, Reg d, Mem { base = Some b; index = None; disp }) ->
    (* Full-width loads through [base+disp] (locals, spilled temps) are the
       most retired memory shape after the stack ops; the page-local path is
       inlined with the address kept unboxed, duplicating the register store
       into both branches so the hot one makes no calls. *)
    let dof = reg_off d and bo = reg_off b in
    fun cpu ->
      Cpu.set_rip cpu (next);
      let regs = cpu.Cpu.regs in
      let m = cpu.Cpu.mem in
      let addr = Int64.add (Bytes.get_int64_le regs bo) disp in
      let off = Int64.to_int addr land (Memory.page_size - 1) in
      let idx = Int64.to_int (Int64.shift_right_logical addr Memory.page_bits) in
      if off <= Memory.page_size - 8 then begin
        let p =
          if m.Memory.last_idx = idx then m.Memory.last_page
          else Memory.read_page_cold m idx off
        in
        Bytes.set_int64_le regs dof (Bytes.get_int64_le p.Memory.data off)
      end
      else Bytes.set_int64_le regs dof (Memory.read_straddle m idx off 8)
  | Mov (W64, Reg d, Mem { base = None; index = None; disp }) ->
    (* Absolute loads (globals): page index and offset are compile-time
       constants, so the hot path is a compare and two byte-buffer reads. *)
    let dof = reg_off d in
    let off = Int64.to_int disp land (Memory.page_size - 1) in
    let idx = Int64.to_int (Int64.shift_right_logical disp Memory.page_bits) in
    if off <= Memory.page_size - 8 then
      fun cpu ->
        Cpu.set_rip cpu (next);
        let regs = cpu.Cpu.regs in
        let m = cpu.Cpu.mem in
        let p =
          if m.Memory.last_idx = idx then m.Memory.last_page
          else Memory.read_page_cold m idx off
        in
        Bytes.set_int64_le regs dof (Bytes.get_int64_le p.Memory.data off)
    else
      fun cpu ->
        Cpu.set_rip cpu (next);
        Bytes.set_int64_le cpu.Cpu.regs dof
          (Memory.read_straddle cpu.Cpu.mem idx off 8)
  | Mov (W64, Mem { base = Some b; index = None; disp }, Reg s) ->
    (* The matching store shape; mirrors [write_u64] including the sticky
       code-page version bump, so self-modifying stores stay exact. *)
    let sof = reg_off s and bo = reg_off b in
    fun cpu ->
      Cpu.set_rip cpu (next);
      let regs = cpu.Cpu.regs in
      let m = cpu.Cpu.mem in
      let addr = Int64.add (Bytes.get_int64_le regs bo) disp in
      let off = Int64.to_int addr land (Memory.page_size - 1) in
      let idx = Int64.to_int (Int64.shift_right_logical addr Memory.page_bits) in
      if off <= Memory.page_size - 8 then begin
        let p =
          if m.Memory.last_idx = idx then m.Memory.last_page
          else Memory.write_page_slow m idx
        in
        if p.Memory.is_code then
          m.Memory.code_version <- m.Memory.code_version + 1;
        Bytes.set_int64_le p.Memory.data off (Bytes.get_int64_le regs sof)
      end
      else Memory.write_straddle m idx off 8 (Bytes.get_int64_le regs sof)
  | Mov (w, d, s) ->
    let rd = read_fn w s in
    let wr = write_fn w d in
    fun cpu ->
      Cpu.set_rip cpu (next);
      let v = rd cpu in
      wr cpu v
  | Lea (r, m) ->
    let rof = reg_off r and ea = ea_fn m in
    fun cpu ->
      Cpu.set_rip cpu (next);
      Bytes.set_int64_le cpu.Cpu.regs rof (ea cpu)
  | Push (Reg r) ->
    (* The paper's chains live and die on the stack, so push/pop/ret inline
       the page-local memory fast path: with the address and value flowing
       unboxed from the register bytes into the page bytes, the hot branch
       performs no calls and no allocation.  Writes cannot fault (pages map
       lazily), and the RSP update precedes the store as in [push64]. *)
    let sof = reg_off r in
    fun cpu ->
      Cpu.set_rip cpu (next);
      let regs = cpu.Cpu.regs in
      let m = cpu.Cpu.mem in
      (* the value must be read before RSP moves: [push rsp] pushes the
         pre-decrement value (caught by the cross-engine random fuzzer) *)
      let v = Bytes.get_int64_le regs sof in
      let sp = Int64.sub (Bytes.get_int64_le regs rsp_o) 8L in
      let off = Int64.to_int sp land (Memory.page_size - 1) in
      let idx = Int64.to_int (Int64.shift_right_logical sp Memory.page_bits) in
      Bytes.set_int64_le regs rsp_o sp;
      if off <= Memory.page_size - 8 then begin
        let p =
          if m.Memory.last_idx = idx then m.Memory.last_page
          else Memory.write_page_slow m idx
        in
        if p.Memory.is_code then
          m.Memory.code_version <- m.Memory.code_version + 1;
        Bytes.set_int64_le p.Memory.data off v
      end
      else Memory.write_straddle m idx off 8 v
  | Push s ->
    let rd = read_fn W64 s in
    fun cpu ->
      Cpu.set_rip cpu (next);
      let v = rd cpu in
      let regs = cpu.Cpu.regs in
      let sp = Int64.sub (Bytes.get_int64_le regs rsp_o) 8L in
      Bytes.set_int64_le regs rsp_o sp;
      Memory.write_u64 cpu.Cpu.mem sp v
  | Pop (Reg r) ->
    let dof = reg_off r in
    fun cpu ->
      Cpu.set_rip cpu (next);
      let regs = cpu.Cpu.regs in
      let m = cpu.Cpu.mem in
      let sp = Bytes.get_int64_le regs rsp_o in
      let off = Int64.to_int sp land (Memory.page_size - 1) in
      let idx = Int64.to_int (Int64.shift_right_logical sp Memory.page_bits) in
      if off <= Memory.page_size - 8 then begin
        let p =
          if m.Memory.last_idx = idx then m.Memory.last_page
          else Memory.read_page_cold m idx off
        in
        let v = Bytes.get_int64_le p.Memory.data off in
        Bytes.set_int64_le regs rsp_o (Int64.add sp 8L);
        Bytes.set_int64_le regs dof v
      end
      else begin
        let v = Memory.read_straddle m idx off 8 in
        Bytes.set_int64_le regs rsp_o (Int64.add sp 8L);
        Bytes.set_int64_le regs dof v
      end
  | Pop d ->
    let wr = write_fn W64 d in
    fun cpu ->
      Cpu.set_rip cpu (next);
      let regs = cpu.Cpu.regs in
      let sp = Bytes.get_int64_le regs rsp_o in
      let v = Memory.read_u64 cpu.Cpu.mem sp in
      Bytes.set_int64_le regs rsp_o (Int64.add sp 8L);
      wr cpu v
  | Ret ->
    fun cpu ->
      Cpu.set_rip cpu (next);
      let regs = cpu.Cpu.regs in
      let m = cpu.Cpu.mem in
      let sp = Bytes.get_int64_le regs rsp_o in
      let off = Int64.to_int sp land (Memory.page_size - 1) in
      let idx = Int64.to_int (Int64.shift_right_logical sp Memory.page_bits) in
      if off <= Memory.page_size - 8 then begin
        let p =
          if m.Memory.last_idx = idx then m.Memory.last_page
          else Memory.read_page_cold m idx off
        in
        let v = Bytes.get_int64_le p.Memory.data off in
        Bytes.set_int64_le regs rsp_o (Int64.add sp 8L);
        Cpu.set_rip cpu (v)
      end
      else begin
        let v = Memory.read_straddle m idx off 8 in
        Bytes.set_int64_le regs rsp_o (Int64.add sp 8L);
        Cpu.set_rip cpu (v)
      end
  | Alu (o, W64, Reg d, Reg s) ->
    (* The flag formulas are written into each body rather than shared
       through helpers: with no call in the closure, the operands and the
       result stay unboxed from register load to register store, so a
       64-bit register ALU retire neither calls nor allocates. *)
    let dof = reg_off d and sof = reg_off s in
    (match o with
     | Add ->
       fun cpu ->
         Cpu.set_rip cpu next;
         let regs = cpu.Cpu.regs in
         let a = Bytes.get_int64_le regs dof in
         let b = Bytes.get_int64_le regs sof in
         let r = Int64.add a b in
         cpu.Cpu.cf <-
           Int64.logor (Int64.logand a b)
             (Int64.logand (Int64.logor a b) (Int64.lognot r)) < 0L;
         cpu.Cpu.o_f <- Int64.logand (Int64.logxor a r) (Int64.logxor b r) < 0L;
         cpu.Cpu.zf <- r = 0L;
         cpu.Cpu.sf <- r < 0L;
         cpu.Cpu.pf <- String.unsafe_get S.parity_table (Int64.to_int r land 0xFF) = '\001';
         Bytes.set_int64_le regs dof r
     | Adc ->
       fun cpu ->
         Cpu.set_rip cpu next;
         let regs = cpu.Cpu.regs in
         let a = Bytes.get_int64_le regs dof in
         let b = Bytes.get_int64_le regs sof in
         let r = Int64.add (Int64.add a b) (if cpu.Cpu.cf then 1L else 0L) in
         cpu.Cpu.cf <-
           Int64.logor (Int64.logand a b)
             (Int64.logand (Int64.logor a b) (Int64.lognot r)) < 0L;
         cpu.Cpu.o_f <- Int64.logand (Int64.logxor a r) (Int64.logxor b r) < 0L;
         cpu.Cpu.zf <- r = 0L;
         cpu.Cpu.sf <- r < 0L;
         cpu.Cpu.pf <- String.unsafe_get S.parity_table (Int64.to_int r land 0xFF) = '\001';
         Bytes.set_int64_le regs dof r
     | Sub ->
       fun cpu ->
         Cpu.set_rip cpu next;
         let regs = cpu.Cpu.regs in
         let a = Bytes.get_int64_le regs dof in
         let b = Bytes.get_int64_le regs sof in
         let r = Int64.sub a b in
         cpu.Cpu.cf <-
           Int64.logor (Int64.logand (Int64.lognot a) b)
             (Int64.logand (Int64.logor (Int64.lognot a) b) r) < 0L;
         cpu.Cpu.o_f <- Int64.logand (Int64.logxor a b) (Int64.logxor a r) < 0L;
         cpu.Cpu.zf <- r = 0L;
         cpu.Cpu.sf <- r < 0L;
         cpu.Cpu.pf <- String.unsafe_get S.parity_table (Int64.to_int r land 0xFF) = '\001';
         Bytes.set_int64_le regs dof r
     | Sbb ->
       fun cpu ->
         Cpu.set_rip cpu next;
         let regs = cpu.Cpu.regs in
         let a = Bytes.get_int64_le regs dof in
         let b = Bytes.get_int64_le regs sof in
         let r = Int64.sub (Int64.sub a b) (if cpu.Cpu.cf then 1L else 0L) in
         cpu.Cpu.cf <-
           Int64.logor (Int64.logand (Int64.lognot a) b)
             (Int64.logand (Int64.logor (Int64.lognot a) b) r) < 0L;
         cpu.Cpu.o_f <- Int64.logand (Int64.logxor a b) (Int64.logxor a r) < 0L;
         cpu.Cpu.zf <- r = 0L;
         cpu.Cpu.sf <- r < 0L;
         cpu.Cpu.pf <- String.unsafe_get S.parity_table (Int64.to_int r land 0xFF) = '\001';
         Bytes.set_int64_le regs dof r
     | Cmp ->
       fun cpu ->
         Cpu.set_rip cpu next;
         let regs = cpu.Cpu.regs in
         let a = Bytes.get_int64_le regs dof in
         let b = Bytes.get_int64_le regs sof in
         let r = Int64.sub a b in
         cpu.Cpu.cf <-
           Int64.logor (Int64.logand (Int64.lognot a) b)
             (Int64.logand (Int64.logor (Int64.lognot a) b) r) < 0L;
         cpu.Cpu.o_f <- Int64.logand (Int64.logxor a b) (Int64.logxor a r) < 0L;
         cpu.Cpu.zf <- r = 0L;
         cpu.Cpu.sf <- r < 0L;
         cpu.Cpu.pf <- String.unsafe_get S.parity_table (Int64.to_int r land 0xFF) = '\001';
         ignore r
     | And ->
       fun cpu ->
         Cpu.set_rip cpu next;
         let regs = cpu.Cpu.regs in
         let a = Bytes.get_int64_le regs dof in
         let b = Bytes.get_int64_le regs sof in
         let r = Int64.logand a b in
         cpu.Cpu.cf <- false;
         cpu.Cpu.o_f <- false;
         cpu.Cpu.zf <- r = 0L;
         cpu.Cpu.sf <- r < 0L;
         cpu.Cpu.pf <- String.unsafe_get S.parity_table (Int64.to_int r land 0xFF) = '\001';
         Bytes.set_int64_le regs dof r
     | Or ->
       fun cpu ->
         Cpu.set_rip cpu next;
         let regs = cpu.Cpu.regs in
         let a = Bytes.get_int64_le regs dof in
         let b = Bytes.get_int64_le regs sof in
         let r = Int64.logor a b in
         cpu.Cpu.cf <- false;
         cpu.Cpu.o_f <- false;
         cpu.Cpu.zf <- r = 0L;
         cpu.Cpu.sf <- r < 0L;
         cpu.Cpu.pf <- String.unsafe_get S.parity_table (Int64.to_int r land 0xFF) = '\001';
         Bytes.set_int64_le regs dof r
     | Xor ->
       fun cpu ->
         Cpu.set_rip cpu next;
         let regs = cpu.Cpu.regs in
         let a = Bytes.get_int64_le regs dof in
         let b = Bytes.get_int64_le regs sof in
         let r = Int64.logxor a b in
         cpu.Cpu.cf <- false;
         cpu.Cpu.o_f <- false;
         cpu.Cpu.zf <- r = 0L;
         cpu.Cpu.sf <- r < 0L;
         cpu.Cpu.pf <- String.unsafe_get S.parity_table (Int64.to_int r land 0xFF) = '\001';
         Bytes.set_int64_le regs dof r
     | Test ->
       fun cpu ->
         Cpu.set_rip cpu next;
         let regs = cpu.Cpu.regs in
         let a = Bytes.get_int64_le regs dof in
         let b = Bytes.get_int64_le regs sof in
         let r = Int64.logand a b in
         cpu.Cpu.cf <- false;
         cpu.Cpu.o_f <- false;
         cpu.Cpu.zf <- r = 0L;
         cpu.Cpu.sf <- r < 0L;
         cpu.Cpu.pf <- String.unsafe_get S.parity_table (Int64.to_int r land 0xFF) = '\001';
         ignore r)
  | Alu (o, W64, Reg d, Imm bv) ->
    let dof = reg_off d in
    let b = bv in
    (match o with
     | Add ->
       fun cpu ->
         Cpu.set_rip cpu next;
         let regs = cpu.Cpu.regs in
         let a = Bytes.get_int64_le regs dof in
         let r = Int64.add a b in
         cpu.Cpu.cf <-
           Int64.logor (Int64.logand a b)
             (Int64.logand (Int64.logor a b) (Int64.lognot r)) < 0L;
         cpu.Cpu.o_f <- Int64.logand (Int64.logxor a r) (Int64.logxor b r) < 0L;
         cpu.Cpu.zf <- r = 0L;
         cpu.Cpu.sf <- r < 0L;
         cpu.Cpu.pf <- String.unsafe_get S.parity_table (Int64.to_int r land 0xFF) = '\001';
         Bytes.set_int64_le regs dof r
     | Adc ->
       fun cpu ->
         Cpu.set_rip cpu next;
         let regs = cpu.Cpu.regs in
         let a = Bytes.get_int64_le regs dof in
         let r = Int64.add (Int64.add a b) (if cpu.Cpu.cf then 1L else 0L) in
         cpu.Cpu.cf <-
           Int64.logor (Int64.logand a b)
             (Int64.logand (Int64.logor a b) (Int64.lognot r)) < 0L;
         cpu.Cpu.o_f <- Int64.logand (Int64.logxor a r) (Int64.logxor b r) < 0L;
         cpu.Cpu.zf <- r = 0L;
         cpu.Cpu.sf <- r < 0L;
         cpu.Cpu.pf <- String.unsafe_get S.parity_table (Int64.to_int r land 0xFF) = '\001';
         Bytes.set_int64_le regs dof r
     | Sub ->
       fun cpu ->
         Cpu.set_rip cpu next;
         let regs = cpu.Cpu.regs in
         let a = Bytes.get_int64_le regs dof in
         let r = Int64.sub a b in
         cpu.Cpu.cf <-
           Int64.logor (Int64.logand (Int64.lognot a) b)
             (Int64.logand (Int64.logor (Int64.lognot a) b) r) < 0L;
         cpu.Cpu.o_f <- Int64.logand (Int64.logxor a b) (Int64.logxor a r) < 0L;
         cpu.Cpu.zf <- r = 0L;
         cpu.Cpu.sf <- r < 0L;
         cpu.Cpu.pf <- String.unsafe_get S.parity_table (Int64.to_int r land 0xFF) = '\001';
         Bytes.set_int64_le regs dof r
     | Sbb ->
       fun cpu ->
         Cpu.set_rip cpu next;
         let regs = cpu.Cpu.regs in
         let a = Bytes.get_int64_le regs dof in
         let r = Int64.sub (Int64.sub a b) (if cpu.Cpu.cf then 1L else 0L) in
         cpu.Cpu.cf <-
           Int64.logor (Int64.logand (Int64.lognot a) b)
             (Int64.logand (Int64.logor (Int64.lognot a) b) r) < 0L;
         cpu.Cpu.o_f <- Int64.logand (Int64.logxor a b) (Int64.logxor a r) < 0L;
         cpu.Cpu.zf <- r = 0L;
         cpu.Cpu.sf <- r < 0L;
         cpu.Cpu.pf <- String.unsafe_get S.parity_table (Int64.to_int r land 0xFF) = '\001';
         Bytes.set_int64_le regs dof r
     | Cmp ->
       fun cpu ->
         Cpu.set_rip cpu next;
         let regs = cpu.Cpu.regs in
         let a = Bytes.get_int64_le regs dof in
         let r = Int64.sub a b in
         cpu.Cpu.cf <-
           Int64.logor (Int64.logand (Int64.lognot a) b)
             (Int64.logand (Int64.logor (Int64.lognot a) b) r) < 0L;
         cpu.Cpu.o_f <- Int64.logand (Int64.logxor a b) (Int64.logxor a r) < 0L;
         cpu.Cpu.zf <- r = 0L;
         cpu.Cpu.sf <- r < 0L;
         cpu.Cpu.pf <- String.unsafe_get S.parity_table (Int64.to_int r land 0xFF) = '\001';
         ignore r
     | And ->
       fun cpu ->
         Cpu.set_rip cpu next;
         let regs = cpu.Cpu.regs in
         let a = Bytes.get_int64_le regs dof in
         let r = Int64.logand a b in
         cpu.Cpu.cf <- false;
         cpu.Cpu.o_f <- false;
         cpu.Cpu.zf <- r = 0L;
         cpu.Cpu.sf <- r < 0L;
         cpu.Cpu.pf <- String.unsafe_get S.parity_table (Int64.to_int r land 0xFF) = '\001';
         Bytes.set_int64_le regs dof r
     | Or ->
       fun cpu ->
         Cpu.set_rip cpu next;
         let regs = cpu.Cpu.regs in
         let a = Bytes.get_int64_le regs dof in
         let r = Int64.logor a b in
         cpu.Cpu.cf <- false;
         cpu.Cpu.o_f <- false;
         cpu.Cpu.zf <- r = 0L;
         cpu.Cpu.sf <- r < 0L;
         cpu.Cpu.pf <- String.unsafe_get S.parity_table (Int64.to_int r land 0xFF) = '\001';
         Bytes.set_int64_le regs dof r
     | Xor ->
       fun cpu ->
         Cpu.set_rip cpu next;
         let regs = cpu.Cpu.regs in
         let a = Bytes.get_int64_le regs dof in
         let r = Int64.logxor a b in
         cpu.Cpu.cf <- false;
         cpu.Cpu.o_f <- false;
         cpu.Cpu.zf <- r = 0L;
         cpu.Cpu.sf <- r < 0L;
         cpu.Cpu.pf <- String.unsafe_get S.parity_table (Int64.to_int r land 0xFF) = '\001';
         Bytes.set_int64_le regs dof r
     | Test ->
       fun cpu ->
         Cpu.set_rip cpu next;
         let regs = cpu.Cpu.regs in
         let a = Bytes.get_int64_le regs dof in
         let r = Int64.logand a b in
         cpu.Cpu.cf <- false;
         cpu.Cpu.o_f <- false;
         cpu.Cpu.zf <- r = 0L;
         cpu.Cpu.sf <- r < 0L;
         cpu.Cpu.pf <- String.unsafe_get S.parity_table (Int64.to_int r land 0xFF) = '\001';
         ignore r)
  | Alu (o, W64, d, s) ->
    (* Full-width ALU ops dominate the minic code the rewriter emits; at
       W64 truncation is the identity, so the compiled body is the bare
       int64 operation plus the specialized flag formulas. *)
    let ra = read_fn W64 d in
    let rb = read_fn W64 s in
    (match o with
     | Add ->
       let wr = write_fn W64 d in
       fun cpu ->
         Cpu.set_rip cpu (next);
         let a = ra cpu in
         let b = rb cpu in
         let r = Int64.add a b in
         flags_add64 cpu a b r;
         wr cpu r
     | Adc ->
       let wr = write_fn W64 d in
       fun cpu ->
         Cpu.set_rip cpu (next);
         let a = ra cpu in
         let b = rb cpu in
         let r = Int64.add (Int64.add a b) (if cpu.Cpu.cf then 1L else 0L) in
         flags_add64 cpu a b r;
         wr cpu r
     | Sub ->
       let wr = write_fn W64 d in
       fun cpu ->
         Cpu.set_rip cpu (next);
         let a = ra cpu in
         let b = rb cpu in
         let r = Int64.sub a b in
         flags_sub64 cpu a b r;
         wr cpu r
     | Sbb ->
       let wr = write_fn W64 d in
       fun cpu ->
         Cpu.set_rip cpu (next);
         let a = ra cpu in
         let b = rb cpu in
         let r = Int64.sub (Int64.sub a b) (if cpu.Cpu.cf then 1L else 0L) in
         flags_sub64 cpu a b r;
         wr cpu r
     | Cmp ->
       fun cpu ->
         Cpu.set_rip cpu (next);
         let a = ra cpu in
         let b = rb cpu in
         flags_sub64 cpu a b (Int64.sub a b)
     | And ->
       let wr = write_fn W64 d in
       fun cpu ->
         Cpu.set_rip cpu (next);
         let r = Int64.logand (ra cpu) (rb cpu) in
         flags_logic64 cpu r;
         wr cpu r
     | Or ->
       let wr = write_fn W64 d in
       fun cpu ->
         Cpu.set_rip cpu (next);
         let r = Int64.logor (ra cpu) (rb cpu) in
         flags_logic64 cpu r;
         wr cpu r
     | Xor ->
       let wr = write_fn W64 d in
       fun cpu ->
         Cpu.set_rip cpu (next);
         let r = Int64.logxor (ra cpu) (rb cpu) in
         flags_logic64 cpu r;
         wr cpu r
     | Test ->
       fun cpu ->
         Cpu.set_rip cpu (next);
         flags_logic64 cpu (Int64.logand (ra cpu) (rb cpu)))
  | Alu (o, w, d, s) ->
    let ra = read_fn w d in
    let rb = read_fn w s in
    (match o with
     | Add ->
       let wr = write_fn w d in
       fun cpu ->
         Cpu.set_rip cpu (next);
         let a = ra cpu in
         let b = rb cpu in
         let r = S.truncate w (Int64.add a b) in
         flags_add cpu w a b r;
         wr cpu r
     | Adc ->
       let wr = write_fn w d in
       fun cpu ->
         Cpu.set_rip cpu (next);
         let a = ra cpu in
         let b = rb cpu in
         let c = if cpu.Cpu.cf then 1L else 0L in
         let r = S.truncate w (Int64.add (Int64.add a b) c) in
         flags_add cpu w a b r;
         wr cpu r
     | Sub ->
       let wr = write_fn w d in
       fun cpu ->
         Cpu.set_rip cpu (next);
         let a = ra cpu in
         let b = rb cpu in
         let r = S.truncate w (Int64.sub a b) in
         flags_sub cpu w a b r;
         wr cpu r
     | Sbb ->
       let wr = write_fn w d in
       fun cpu ->
         Cpu.set_rip cpu (next);
         let a = ra cpu in
         let b = rb cpu in
         let c = if cpu.Cpu.cf then 1L else 0L in
         let r = S.truncate w (Int64.sub (Int64.sub a b) c) in
         flags_sub cpu w a b r;
         wr cpu r
     | Cmp ->
       fun cpu ->
         Cpu.set_rip cpu (next);
         let a = ra cpu in
         let b = rb cpu in
         flags_sub cpu w a b (S.truncate w (Int64.sub a b))
     | And ->
       let wr = write_fn w d in
       fun cpu ->
         Cpu.set_rip cpu (next);
         let a = ra cpu in
         let b = rb cpu in
         let r = Int64.logand a b in
         flags_logic cpu w r;
         wr cpu r
     | Or ->
       let wr = write_fn w d in
       fun cpu ->
         Cpu.set_rip cpu (next);
         let a = ra cpu in
         let b = rb cpu in
         let r = Int64.logor a b in
         flags_logic cpu w r;
         wr cpu r
     | Xor ->
       let wr = write_fn w d in
       fun cpu ->
         Cpu.set_rip cpu (next);
         let a = ra cpu in
         let b = rb cpu in
         let r = Int64.logxor a b in
         flags_logic cpu w r;
         wr cpu r
     | Test ->
       fun cpu ->
         Cpu.set_rip cpu (next);
         let a = ra cpu in
         let b = rb cpu in
         flags_logic cpu w (Int64.logand a b))
  | Unary (o, w, d) ->
    let ra = read_fn w d in
    let wr = write_fn w d in
    (match o with
     | Neg ->
       fun cpu ->
         Cpu.set_rip cpu (next);
         let a = ra cpu in
         let r = S.truncate w (Int64.neg a) in
         flags_sub cpu w 0L a r;
         wr cpu r
     | Not ->
       fun cpu ->
         Cpu.set_rip cpu (next);
         wr cpu (S.truncate w (Int64.lognot (ra cpu)))
     | Inc ->
       fun cpu ->
         Cpu.set_rip cpu (next);
         let a = ra cpu in
         let r = S.truncate w (Int64.add a 1L) in
         cpu.Cpu.o_f <- S.overflow_add w a 1L r;
         set_zsp cpu w r;
         wr cpu r
     | Dec ->
       fun cpu ->
         Cpu.set_rip cpu (next);
         let a = ra cpu in
         let r = S.truncate w (Int64.sub a 1L) in
         cpu.Cpu.o_f <- S.overflow_sub w a 1L r;
         set_zsp cpu w r;
         wr cpu r)
  | Cmov (cc, r, s) ->
    let rof = reg_off r in
    let rd = read_fn W64 s in
    fun cpu ->
      Cpu.set_rip cpu (next);
      let v = rd cpu in
      if Cpu.cc_holds cpu cc then Bytes.set_int64_le cpu.Cpu.regs rof v
  | Setcc (cc, d) ->
    let wr = write_fn W8 d in
    fun cpu ->
      Cpu.set_rip cpu (next);
      wr cpu (if Cpu.cc_holds cpu cc then 1L else 0L)
  | Jmp (J_rel d) ->
    let tgt = Int64.add next (Int64.of_int d) in
    fun cpu -> Cpu.set_rip cpu (tgt)
  | Jmp (J_op a) ->
    let rd = read_fn W64 a in
    fun cpu ->
      Cpu.set_rip cpu (next);
      Cpu.set_rip cpu (rd cpu)
  | Jcc (cc, d) ->
    let tgt = Int64.add next (Int64.of_int d) in
    fun cpu -> Cpu.set_rip cpu ((if Cpu.cc_holds cpu cc then tgt else next))
  | Call (J_rel d) ->
    let tgt = Int64.add next (Int64.of_int d) in
    fun cpu ->
      Cpu.set_rip cpu (next);
      let regs = cpu.Cpu.regs in
      let sp = Int64.sub (Bytes.get_int64_le regs rsp_o) 8L in
      Bytes.set_int64_le regs rsp_o sp;
      Memory.write_u64 cpu.Cpu.mem sp next;
      Cpu.set_rip cpu (tgt)
  | Call (J_op a) ->
    let rd = read_fn W64 a in
    fun cpu ->
      Cpu.set_rip cpu (next);
      let tgt = rd cpu in
      let regs = cpu.Cpu.regs in
      let sp = Int64.sub (Bytes.get_int64_le regs rsp_o) 8L in
      Bytes.set_int64_le regs rsp_o sp;
      Memory.write_u64 cpu.Cpu.mem sp next;
      Cpu.set_rip cpu (tgt)
  | Hlt ->
    fun cpu ->
      Cpu.set_rip cpu (next);
      cpu.Cpu.halted <- true
  | Nop -> fun cpu -> Cpu.set_rip cpu (next)
  | Movzx _ | Movsx _ | Imul2 _ | MulDiv _ | Shift _ | Leave | Xchg _
  | Lahf | Sahf ->
    (* cold on every workload we run; the win is skipping fetch/decode *)
    fun cpu ->
      Cpu.set_rip cpu (next);
      exec_instr cpu i

(* Conservative may-write-memory classification, used to decide whether a
   block needs mid-block staleness checks at all. *)
let writes_mem = function
  | Push _ | Call _ | Xchg _ -> true
  | Mov (_, Mem _, _) | Alu (_, _, Mem _, _) | Unary (_, _, Mem _)
  | Setcc (_, Mem _) | Shift (_, _, Mem _, _) | Pop (Mem _) -> true
  | Mov _ | Movzx _ | Movsx _ | Lea _ | Pop _ | Alu _ | Unary _ | Imul2 _
  | MulDiv _ | Shift _ | Cmov _ | Setcc _ | Jmp _ | Jcc _ | Ret | Leave | Nop
  | Hlt | Lahf | Sahf -> false

(* Control transfers (and Hlt) end a block: Call too, unlike
   [Isa.is_terminator], because the return address must be live in the
   block cache key space for the callee's eventual ret. *)
let ends_block = function
  | Jmp _ | Jcc _ | Ret | Call _ | Hlt -> true
  | Mov _ | Movzx _ | Movsx _ | Lea _ | Push _ | Pop _ | Alu _ | Unary _
  | Imul2 _ | MulDiv _ | Shift _ | Cmov _ | Setcc _ | Leave | Xchg _ | Nop
  | Lahf | Sahf -> false

(* Safety valve for pathological byte streams (difftest wild runs can walk
   long runs of valid-decoding junk before faulting). *)
let max_block_instrs = 128

(* Fuse a trailing (op, ret) pair into one slot.  Under ROP rewriting most
   retired instructions come in exactly this shape — a one-instruction gadget
   body plus its ret — so the pair is worth a dedicated closure: one slot
   dispatch instead of two, and for [pop r; ret] one page resolve for both
   stack reads.  Only called for non-writing ops in non-writing blocks; the
   fused closure counts the first retire itself (the run loop counts slots).
   [pop rsp; ret] must not take the specialized path: the ret's read goes
   through the popped rsp, which the generic pair composition gets right. *)
let fuse_with_ret (i : instr) ~(next1 : int64) ~(next2 : int64) : Cpu.t -> unit =
  match i with
  | Pop (Reg r) when r <> RSP ->
    let dof = reg_off r in
    let cold_pop = compile_instr i ~next:next1 in
    let cold_ret = compile_instr Ret ~next:next2 in
    fun cpu ->
      let regs = cpu.Cpu.regs in
      let m = cpu.Cpu.mem in
      let sp = Bytes.get_int64_le regs rsp_o in
      let off = Int64.to_int sp land (Memory.page_size - 1) in
      if off <= Memory.page_size - 16 then begin
        (* both reads in one page: resolve it once; after the reads nothing
           can fault, so the pop's intermediate state is unobservable *)
        Cpu.set_rip cpu next1;
        let idx = Int64.to_int (Int64.shift_right_logical sp Memory.page_bits) in
        let p =
          if m.Memory.last_idx = idx then m.Memory.last_page
          else Memory.read_page_cold m idx off
        in
        let v = Bytes.get_int64_le p.Memory.data off in
        let ra = Bytes.get_int64_le p.Memory.data (off + 8) in
        Bytes.set_int64_le regs rsp_o (Int64.add sp 16L);
        Bytes.set_int64_le regs dof v;
        cpu.Cpu.steps <- cpu.Cpu.steps + 1;
        Cpu.set_rip cpu ra
      end
      else begin
        cold_pop cpu;
        cpu.Cpu.steps <- cpu.Cpu.steps + 1;
        cold_ret cpu
      end
  | _ ->
    (* Generic pair: run the op's own closure, then the ret body inline —
       the ret re-reads rsp, so ops that move it (pop rsp) stay correct. *)
    let op = compile_instr i ~next:next1 in
    fun cpu ->
      op cpu;
      cpu.Cpu.steps <- cpu.Cpu.steps + 1;
      Cpu.set_rip cpu next2;
      let regs = cpu.Cpu.regs in
      let m = cpu.Cpu.mem in
      let sp = Bytes.get_int64_le regs rsp_o in
      let off = Int64.to_int sp land (Memory.page_size - 1) in
      let idx = Int64.to_int (Int64.shift_right_logical sp Memory.page_bits) in
      if off <= Memory.page_size - 8 then begin
        let p =
          if m.Memory.last_idx = idx then m.Memory.last_page
          else Memory.read_page_cold m idx off
        in
        let v = Bytes.get_int64_le p.Memory.data off in
        Bytes.set_int64_le regs rsp_o (Int64.add sp 8L);
        Cpu.set_rip cpu v
      end
      else begin
        let v = Memory.read_straddle m idx off 8 in
        Bytes.set_int64_le regs rsp_o (Int64.add sp 8L);
        Cpu.set_rip cpu v
      end

(* Decode a straight-line run starting at [rip0] and compile it.  An empty
   block means the very first decode failed: an invalid-instruction fault
   at dispatch.  A decode failure later just ends the block early; the next
   dispatch at that rip reports the fault with the right address. *)
let translate t rip0 =
  t.n_translated <- t.n_translated + 1;
  let items = ref [] in          (* (instr, next) pairs, last decoded first *)
  let n = ref 0 in
  let rip = ref rip0 in
  let stop = ref false in
  let writes = ref false in
  while not !stop do
    match decode_raw t !rip with
    | None -> stop := true
    | Some (i, len) ->
      let next = Int64.add !rip (Int64.of_int len) in
      items := (i, next) :: !items;
      incr n;
      rip := next;
      if writes_mem i then writes := true;
      if ends_block i || !n >= max_block_instrs then stop := true
  done;
  let writes = !writes in
  let compile acc items =
    List.fold_left (fun acc (i, next) -> compile_instr i ~next :: acc) acc items
  in
  let slots =
    match !items with
    | (Ret, next2) :: (op_i, next1) :: rest when not writes ->
      compile [ fuse_with_ret op_i ~next1 ~next2 ] rest
    | items -> compile [] items
  in
  { b_ops = Array.of_list slots; b_writes = writes; b_len = !n }

(* --- run loops ---------------------------------------------------------- *)

let run_ref ~fuel t =
  let rec go fuel =
    if t.cpu.Cpu.halted then Halted
    else if fuel <= 0 then Out_of_fuel
    else
      match step t with
      | () -> go (fuel - 1)
      | exception Exec_fault m -> Fault m
      | exception Memory.Fault (addr, m) ->
        Fault (Printf.sprintf "%s (0x%Lx)" m addr)
  in
  go fuel

(* Fast dispatch: translate-once, then run each block's closures in a tight
   loop.  Per retired instruction the loop does one closure call, a step
   increment and — only in blocks containing stores — a version compare;
   fetch, decode and operand resolution were paid at translation time.  The
   version compare after every op of a storing block keeps self-modifying
   code exact: a store into a code page aborts the rest of the block (each
   op already left [rip] correct), and the next dispatch re-translates from
   the new bytes — observably identical to the reference stepper re-fetching
   every instruction. *)
let run_fast ~fuel t =
  let cpu = t.cpu in
  let mem = cpu.Cpu.mem in
  let dm_keys = t.dm_keys in
  let dm_blocks = t.dm_blocks in
  (* Retire ops [i, quota); returns the count retired.  Stops early when a
     retired op bumped the memory's code version (a store hit a code page):
     the rest of the block may be stale, so control returns to dispatch,
     which flushes and re-translates.  Tail-recursive with immediate
     arguments — the loop allocates nothing. *)
  let rec exec_ops ops quota i v =
    if i >= quota then i
    else begin
      (Array.unsafe_get ops i) cpu;
      cpu.Cpu.steps <- cpu.Cpu.steps + 1;
      let i = i + 1 in
      if mem.Memory.code_version <> v then i else exec_ops ops quota i v
    end
  in
  (* Loop for blocks with no memory-writing op: nothing in them can move the
     code version, so the staleness compare is dropped and every slot runs.
     Fused slots retire two instructions, counting the extra one themselves;
     the caller charges the block's [b_len] against the fuel in one go. *)
  let rec exec_ops_nw ops n i =
    if i < n then begin
      (Array.unsafe_get ops i) cpu;
      cpu.Cpu.steps <- cpu.Cpu.steps + 1;
      exec_ops_nw ops n (i + 1)
    end
  in
  let rec go remaining =
    if cpu.Cpu.halted then Halted
    else if remaining <= 0 then Out_of_fuel
    else begin
      if mem.Memory.code_version <> t.cache_version then
        flush_caches t mem.Memory.code_version;
      t.n_dispatches <- t.n_dispatches + 1;
      let key = Int64.to_int (Cpu.rip cpu) in
      let slot = key land dm_mask in
      let block =
        if Array.unsafe_get dm_keys slot = key then
          Array.unsafe_get dm_blocks slot
        else begin
          t.n_dm_misses <- t.n_dm_misses + 1;
          let b =
            match ITbl.find_opt t.block_cache key with
            | Some b -> b
            | None ->
              let b = translate t (Cpu.rip cpu) in
              if Array.length b.b_ops > 0 then ITbl.replace t.block_cache key b;
              b
          in
          if Array.length b.b_ops > 0 then begin
            Array.unsafe_set dm_keys slot key;
            Array.unsafe_set dm_blocks slot b
          end;
          b
        end
      in
      let ops = block.b_ops in
      let n = Array.length ops in
      if n = 0 then
        raise
          (Exec_fault
             (Printf.sprintf "invalid instruction at 0x%Lx" (Cpu.rip cpu)));
      if block.b_writes then begin
        (* slots = instructions here, so fuel can stop the loop mid-block *)
        let quota = if remaining < n then remaining else n in
        let retired = exec_ops ops quota 0 t.cache_version in
        go (remaining - retired)
      end
      else if remaining >= block.b_len then begin
        (* b_len > n exactly when a fused slot retires two instructions *)
        t.n_fused <- t.n_fused + (block.b_len - n);
        (* fused gadgets and bare rets are single-slot: skip the loop *)
        if n = 1 then begin
          (Array.unsafe_get ops 0) cpu;
          cpu.Cpu.steps <- cpu.Cpu.steps + 1
        end
        else exec_ops_nw ops n 0;
        go (remaining - block.b_len)
      end
      else begin
        (* Fuel expires inside this block.  Fused slots retire two
           instructions at once, so retire the last [remaining] one at a
           time through the reference fetch path instead — observationally
           identical, and only ever runs in the turn fuel hits zero. *)
        let k = ref remaining in
        while !k > 0 && not cpu.Cpu.halted do
          step t;
          decr k
        done;
        go !k
      end
    end
  in
  try go fuel with
  | Exec_fault m -> Fault m
  | Memory.Fault (addr, m) -> Fault (Printf.sprintf "%s (0x%Lx)" m addr)

(* Run until halt, fault, or [fuel] instructions.  A tracer hook needs the
   (rip, instr) pair before every retire, which is exactly the reference
   stepper's fetch loop — so an installed [on_step] routes there, keeping
   taint/ropaware/coverage observations identical under either engine. *)
let run ?(fuel = max_int) t =
  match t.engine with
  | Ref -> run_ref ~fuel t
  | Fast -> if t.on_step <> None then run_ref ~fuel t else run_fast ~fuel t

(* Export the engine's lifetime counters into the metrics registry.  Cold
   path — Runner calls it once per completed run; the guard means a
   metrics-disabled run pays one bool load here and nothing anywhere else. *)
let publish_metrics t =
  if Obs.Metrics.enabled () then begin
    let c = Obs.Metrics.count in
    c "exec.steps" t.cpu.Cpu.steps;
    c "exec.block_dispatches" t.n_dispatches;
    c "exec.dm_hits" (t.n_dispatches - t.n_dm_misses);
    c "exec.blocks_translated" t.n_translated;
    c "exec.cache_flushes" t.n_flushes;
    c "exec.fused_retires" t.n_fused;
    c "exec.decode_cache_misses" t.n_decode_misses;
    c "exec.pages_touched" (Memory.page_count t.cpu.Cpu.mem);
    Obs.Metrics.observe_named "exec.steps_per_run" t.cpu.Cpu.steps
  end
