(* Concrete stepper for x64-lite.

   The only execution engine used by the obfuscated programs themselves; the
   symbolic/concolic engines in lib/symex mirror these semantics over
   expression values.  A decode cache keyed by absolute address makes repeated
   chain execution cheap (we assume no self-modifying code, the same
   limitation as the paper's rewriter, §IV-C). *)

open X86.Isa
module S = Semantics

exception Exec_fault of string

type exit_status =
  | Halted
  | Fault of string
  | Out_of_fuel

let pp_exit fmt = function
  | Halted -> Format.pp_print_string fmt "halted"
  | Fault m -> Format.fprintf fmt "fault: %s" m
  | Out_of_fuel -> Format.pp_print_string fmt "out of fuel"

(* --- operand access ------------------------------------------------- *)

let ea cpu (m : mem) =
  let b = match m.base with Some r -> Cpu.get cpu r | None -> 0L in
  let i =
    match m.index with
    | Some (r, sc) -> Int64.mul (Cpu.get cpu r) (Int64.of_int sc)
    | None -> 0L
  in
  Int64.add (Int64.add b i) m.disp

let read_operand cpu w = function
  | Reg r -> S.truncate w (Cpu.get cpu r)
  | Imm v -> S.truncate w v
  | Mem m -> Memory.read cpu.Cpu.mem (ea cpu m) (width_bytes w)

(* Register writes follow x86: 32-bit writes zero-extend, 8/16-bit merge. *)
let write_reg cpu w r v =
  match w with
  | W64 -> Cpu.set cpu r v
  | W32 -> Cpu.set cpu r (Int64.logand v 0xFFFFFFFFL)
  | W16 ->
    let old = Cpu.get cpu r in
    Cpu.set cpu r (Int64.logor (Int64.logand old (-65536L)) (Int64.logand v 0xFFFFL))
  | W8 ->
    let old = Cpu.get cpu r in
    Cpu.set cpu r (Int64.logor (Int64.logand old (-256L)) (Int64.logand v 0xFFL))

let write_operand cpu w op v =
  match op with
  | Reg r -> write_reg cpu w r v
  | Mem m -> Memory.write cpu.Cpu.mem (ea cpu m) (width_bytes w) v
  | Imm _ -> raise (Exec_fault "write to immediate")

(* --- flag updates ---------------------------------------------------- *)

let set_zsp cpu w r =
  let zf, sf, pf = S.flags_zsp w r in
  cpu.Cpu.zf <- zf; cpu.Cpu.sf <- sf; cpu.Cpu.pf <- pf

let flags_add cpu w a b r =
  cpu.Cpu.cf <- S.carry_out w a b r;
  cpu.Cpu.o_f <- S.overflow_add w a b r;
  set_zsp cpu w r

let flags_sub cpu w a b r =
  cpu.Cpu.cf <- S.borrow_out w a b r;
  cpu.Cpu.o_f <- S.overflow_sub w a b r;
  set_zsp cpu w r

let flags_logic cpu w r =
  cpu.Cpu.cf <- false;
  cpu.Cpu.o_f <- false;
  set_zsp cpu w r

(* --- stack helpers ---------------------------------------------------- *)

let push64 cpu v =
  let sp = Int64.sub (Cpu.get cpu RSP) 8L in
  Cpu.set cpu RSP sp;
  Memory.write_u64 cpu.Cpu.mem sp v

let pop64 cpu =
  let sp = Cpu.get cpu RSP in
  let v = Memory.read_u64 cpu.Cpu.mem sp in
  Cpu.set cpu RSP (Int64.add sp 8L);
  v

(* --- single instruction ----------------------------------------------- *)

let exec_alu cpu o w d s =
  let a = read_operand cpu w d in
  let b = read_operand cpu w s in
  match o with
  | Add ->
    let r = S.truncate w (Int64.add a b) in
    flags_add cpu w a b r;
    write_operand cpu w d r
  | Adc ->
    let c = if cpu.Cpu.cf then 1L else 0L in
    let r = S.truncate w (Int64.add (Int64.add a b) c) in
    flags_add cpu w a b r;
    write_operand cpu w d r
  | Sub ->
    let r = S.truncate w (Int64.sub a b) in
    flags_sub cpu w a b r;
    write_operand cpu w d r
  | Sbb ->
    let c = if cpu.Cpu.cf then 1L else 0L in
    let r = S.truncate w (Int64.sub (Int64.sub a b) c) in
    flags_sub cpu w a b r;
    write_operand cpu w d r
  | Cmp ->
    let r = S.truncate w (Int64.sub a b) in
    flags_sub cpu w a b r
  | And ->
    let r = Int64.logand a b in
    flags_logic cpu w r;
    write_operand cpu w d r
  | Or ->
    let r = Int64.logor a b in
    flags_logic cpu w r;
    write_operand cpu w d r
  | Xor ->
    let r = Int64.logxor a b in
    flags_logic cpu w r;
    write_operand cpu w d r
  | Test ->
    let r = Int64.logand a b in
    flags_logic cpu w r

let exec_unary cpu o w d =
  let a = read_operand cpu w d in
  match o with
  | Neg ->
    let r = S.truncate w (Int64.neg a) in
    flags_sub cpu w 0L a r;
    write_operand cpu w d r
  | Not ->
    (* no flag update, as on x86 *)
    write_operand cpu w d (S.truncate w (Int64.lognot a))
  | Inc ->
    let r = S.truncate w (Int64.add a 1L) in
    cpu.Cpu.o_f <- S.overflow_add w a 1L r;
    set_zsp cpu w r;
    write_operand cpu w d r
  | Dec ->
    let r = S.truncate w (Int64.sub a 1L) in
    cpu.Cpu.o_f <- S.overflow_sub w a 1L r;
    set_zsp cpu w r;
    write_operand cpu w d r

let exec_shift cpu o w d count =
  let a = read_operand cpu w d in
  let n =
    match count with
    | S_imm n -> n
    | S_cl -> Int64.to_int (Int64.logand (Cpu.get cpu RCX) 0xFFL)
  in
  let n = n land (if w = W64 then 63 else 31) in
  if n = 0 then ()  (* count 0: no flags, no write needed *)
  else begin
    let bits = width_bits w in
    match o with
    | Shl ->
      let r = S.truncate w (Int64.shift_left a n) in
      cpu.Cpu.cf <-
        (n <= bits && Int64.logand (Int64.shift_right_logical a (bits - n)) 1L = 1L);
      cpu.Cpu.o_f <- S.sign_bit w r <> cpu.Cpu.cf;
      set_zsp cpu w r;
      write_operand cpu w d r
    | Shr ->
      let r = Int64.shift_right_logical a n in
      cpu.Cpu.cf <- Int64.logand (Int64.shift_right_logical a (n - 1)) 1L = 1L;
      cpu.Cpu.o_f <- S.sign_bit w a;
      set_zsp cpu w r;
      write_operand cpu w d r
    | Sar ->
      let r = S.truncate w (Int64.shift_right (S.sign_extend w a) n) in
      cpu.Cpu.cf <-
        Int64.logand (Int64.shift_right (S.sign_extend w a) (min 63 (n - 1))) 1L = 1L;
      cpu.Cpu.o_f <- false;
      set_zsp cpu w r;
      write_operand cpu w d r
    | Rol ->
      let n = n mod bits in
      let r =
        if n = 0 then a
        else
          S.truncate w
            (Int64.logor (Int64.shift_left a n)
               (Int64.shift_right_logical (S.truncate w a) (bits - n)))
      in
      cpu.Cpu.cf <- Int64.logand r 1L = 1L;
      write_operand cpu w d r
    | Ror ->
      let n = n mod bits in
      let r =
        if n = 0 then a
        else
          S.truncate w
            (Int64.logor (Int64.shift_right_logical (S.truncate w a) n)
               (Int64.shift_left a (bits - n)))
      in
      cpu.Cpu.cf <- S.sign_bit w r;
      write_operand cpu w d r
  end

let exec_muldiv cpu o src =
  let v = read_operand cpu W64 src in
  let rax = Cpu.get cpu RAX in
  let rdx = Cpu.get cpu RDX in
  match o with
  | Mul ->
    let lo = Int64.mul rax v in
    let hi = S.mulhi_u rax v in
    Cpu.set cpu RAX lo;
    Cpu.set cpu RDX hi;
    let c = hi <> 0L in
    cpu.Cpu.cf <- c; cpu.Cpu.o_f <- c
  | Imul1 ->
    let lo = Int64.mul rax v in
    let hi = S.mulhi_s rax v in
    Cpu.set cpu RAX lo;
    Cpu.set cpu RDX hi;
    let c = hi <> Int64.shift_right lo 63 in
    cpu.Cpu.cf <- c; cpu.Cpu.o_f <- c
  | Div ->
    (match S.divmod_u128 rdx rax v with
     | q, r -> Cpu.set cpu RAX q; Cpu.set cpu RDX r
     | exception Division_by_zero -> raise (Exec_fault "divide by zero")
     | exception S.Div_overflow -> raise (Exec_fault "divide overflow"))
  | Idiv ->
    (match S.divmod_s128 rdx rax v with
     | q, r -> Cpu.set cpu RAX q; Cpu.set cpu RDX r
     | exception Division_by_zero -> raise (Exec_fault "divide by zero")
     | exception S.Div_overflow -> raise (Exec_fault "divide overflow"))

(* Execute [i]; [cpu.rip] has already been advanced past the instruction. *)
let exec_instr cpu i =
  match i with
  | Nop -> ()
  | Hlt -> cpu.Cpu.halted <- true
  | Lahf ->
    let b =
      (if cpu.Cpu.sf then 0x80 else 0)
      lor (if cpu.Cpu.zf then 0x40 else 0)
      lor (if cpu.Cpu.pf then 0x04 else 0)
      lor 0x02
      lor (if cpu.Cpu.cf then 0x01 else 0)
    in
    let old = Cpu.get cpu RAX in
    Cpu.set cpu RAX
      (Int64.logor
         (Int64.logand old (Int64.lognot 0xFF00L))
         (Int64.of_int (b lsl 8)))
  | Sahf ->
    let b = Int64.to_int (Int64.shift_right_logical (Cpu.get cpu RAX) 8) land 0xFF in
    cpu.Cpu.sf <- b land 0x80 <> 0;
    cpu.Cpu.zf <- b land 0x40 <> 0;
    cpu.Cpu.pf <- b land 0x04 <> 0;
    cpu.Cpu.cf <- b land 0x01 <> 0
  | Mov (w, d, s) ->
    let v = read_operand cpu w s in
    write_operand cpu w d v
  | Movzx (dw, sw, r, s) ->
    let v = read_operand cpu sw s in
    write_reg cpu dw r v
  | Movsx (dw, sw, r, s) ->
    let v = S.sign_extend sw (read_operand cpu sw s) in
    write_reg cpu dw r (S.truncate dw v)
  | Lea (r, m) -> Cpu.set cpu r (ea cpu m)
  | Push a ->
    let v = read_operand cpu W64 a in
    push64 cpu v
  | Pop d ->
    let v = pop64 cpu in
    write_operand cpu W64 d v
  | Alu (o, w, d, s) -> exec_alu cpu o w d s
  | Unary (o, w, d) -> exec_unary cpu o w d
  | Imul2 (w, r, s) ->
    let a = S.truncate w (Cpu.get cpu r) in
    let b = read_operand cpu w s in
    let full = Int64.mul (S.sign_extend w a) (S.sign_extend w b) in
    let r64 = S.truncate w full in
    let c = S.sign_extend w r64 <> full in
    cpu.Cpu.cf <- c; cpu.Cpu.o_f <- c;
    set_zsp cpu w r64;
    write_reg cpu w r r64
  | MulDiv (o, s) -> exec_muldiv cpu o s
  | Shift (o, w, d, c) -> exec_shift cpu o w d c
  | Cmov (cc, r, s) ->
    let v = read_operand cpu W64 s in
    if S.cc_holds (Cpu.flags cpu) cc then Cpu.set cpu r v
  | Setcc (cc, d) ->
    let v = if S.cc_holds (Cpu.flags cpu) cc then 1L else 0L in
    write_operand cpu W8 d v
  | Jmp (J_rel d) -> cpu.Cpu.rip <- Int64.add cpu.Cpu.rip (Int64.of_int d)
  | Jmp (J_op a) -> cpu.Cpu.rip <- read_operand cpu W64 a
  | Jcc (cc, d) ->
    if S.cc_holds (Cpu.flags cpu) cc then
      cpu.Cpu.rip <- Int64.add cpu.Cpu.rip (Int64.of_int d)
  | Call (J_rel d) ->
    push64 cpu cpu.Cpu.rip;
    cpu.Cpu.rip <- Int64.add cpu.Cpu.rip (Int64.of_int d)
  | Call (J_op a) ->
    let target = read_operand cpu W64 a in
    push64 cpu cpu.Cpu.rip;
    cpu.Cpu.rip <- target
  | Ret -> cpu.Cpu.rip <- pop64 cpu
  | Leave ->
    Cpu.set cpu RSP (Cpu.get cpu RBP);
    Cpu.set cpu RBP (pop64 cpu)
  | Xchg (w, a, b) ->
    let va = read_operand cpu w a in
    let vb = read_operand cpu w b in
    write_operand cpu w a vb;
    write_operand cpu w b va

(* --- fetch/decode with cache ------------------------------------------ *)

type t = {
  cpu : Cpu.t;
  decode_cache : (int64, X86.Isa.instr * int) Hashtbl.t;
  mutable on_step : (Cpu.t -> int64 -> X86.Isa.instr -> unit) option;
}

let make cpu = { cpu; decode_cache = Hashtbl.create 1024; on_step = None }

let fetch t rip =
  match Hashtbl.find_opt t.decode_cache rip with
  | Some r -> Some r
  | None ->
    let window = Memory.read_bytes_avail t.cpu.Cpu.mem rip X86.Encode.max_instr_len in
    (match X86.Decode.decode window 0 with
     | Some (i, len) ->
       Hashtbl.replace t.decode_cache rip (i, len);
       Some (i, len)
     | None -> None)

(* One step; raises Exec_fault / Memory.Fault on machine exceptions. *)
let step t =
  let cpu = t.cpu in
  let rip = cpu.Cpu.rip in
  match fetch t rip with
  | None -> raise (Exec_fault (Printf.sprintf "invalid instruction at 0x%Lx" rip))
  | Some (i, len) ->
    (match t.on_step with Some f -> f cpu rip i | None -> ());
    cpu.Cpu.rip <- Int64.add rip (Int64.of_int len);
    exec_instr cpu i;
    cpu.Cpu.steps <- cpu.Cpu.steps + 1

(* Run until halt, fault, or [fuel] instructions. *)
let run ?(fuel = max_int) t =
  let rec go fuel =
    if t.cpu.Cpu.halted then Halted
    else if fuel <= 0 then Out_of_fuel
    else
      match step t with
      | () -> go (fuel - 1)
      | exception Exec_fault m -> Fault m
      | exception Memory.Fault (addr, m) ->
        Fault (Printf.sprintf "%s (0x%Lx)" m addr)
  in
  go fuel
