(* Deterministic splitmix64 PRNG.

   Every randomized component of the system (gadget diversification, P1 array
   population, RandomFuns generation, solver search) takes an explicit [t] so
   that experiments are reproducible from a seed, mirroring the paper's use of
   per-program obfuscation-time choices. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let golden = 0x9E3779B97F4A7C15L

(* Core splitmix64 step: returns a full 64-bit value. *)
let next64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform int in [0, bound). [bound] must be positive. *)
let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
  v mod bound

(* Uniform int in [lo, hi] inclusive. *)
let range t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next64 t) 1L = 1L

(* Pick a uniformly random element of a non-empty list. *)
let choose t xs =
  match xs with
  | [] -> invalid_arg "Rng.choose: empty list"
  | _ -> List.nth xs (int t (List.length xs))

(* Fisher-Yates shuffle (returns a new list). *)
let shuffle t xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

(* Derive an independent stream, e.g. one per obfuscated function. *)
let split t =
  let s = next64 t in
  { state = s }

(* Derive a stream from a master seed and a stable string key (a job's
   cache key, a table cell id, ...).  Unlike [split], the result does not
   depend on how many draws preceded it, so a parallel worker gets exactly
   the stream a serial run would — randomness keyed by *what* the job is,
   not *when* it runs. *)
let of_key ~seed key =
  let d = Digest.string (Printf.sprintf "%d\x00%s" seed key) in
  let s = ref 0L in
  for i = 0 to 7 do
    s := Int64.logor (Int64.shift_left !s 8) (Int64.of_int (Char.code d.[i]))
  done;
  { state = !s }
