(* Hashtable specialized to immediate [int] keys.

   The stdlib's plain [Hashtbl] hashes every key through the polymorphic
   [Hashtbl.hash], which walks the representation of the key — for the boxed
   [int64] addresses the machine used to key its decode and page tables with,
   that is a C call plus a traversal per probe.  Machine addresses fit
   comfortably in OCaml's 63-bit immediates (the image tops out below 2^31,
   and even a full 64-bit address keyed by page index needs only 52 bits), so
   keying by [int] with a two-multiply avalanche makes a probe a handful of
   inline instructions.

   The mixer is the 64-bit variant of the splitmix64 finalizer (same family
   as {!Rng}); [Hashtbl.Make] masks the result to non-negative itself. *)

include Hashtbl.Make (struct
    type t = int

    let equal (a : int) (b : int) = a = b

    let hash (x : int) =
      let x = x * 0x9E3779B97F4A7C1 in
      let x = x lxor (x lsr 29) in
      let x = x * 0xBF58476D1CE4E5B in
      x lxor (x lsr 32)
  end)
