(* Symbolic-execution engines: the angr (SE) and S2E (DSE) stand-ins.

   Both engines drive Sym_state over a loaded image.  SE forks eagerly at
   every symbolic branch (witness-guided: each state carries a satisfying
   model, so one side of each fork is free).  DSE is generational concolic
   execution: a concrete input drives one path, branch constraints are
   negated to derive new inputs, and pending negations are scheduled with a
   CUPA-like class-uniform strategy (group by branch site, round-robin over
   groups, §VII-B). *)

module E = Expr

type goal =
  | G_secret                 (* find input making the function return 1 *)
  | G_coverage               (* touch every __cov probe *)

type budget = {
  wall_seconds : float;
  max_instrs : int;          (* total symbolic instructions *)
  max_states : int;          (* SE: states explored; DSE: paths executed *)
  solver_evals : int;        (* per solver query *)
  total_solver_evals : int;  (* across the whole run: the deterministic
                                cost cap campaign cells are bounded by *)
  path_fuel : int;           (* instructions per path *)
  indirect_limit : int;      (* values enumerated per symbolic target *)
  portfolio : bool;          (* race solver strategies instead of pipeline *)
}

let default_budget = {
  wall_seconds = 5.0;
  max_instrs = 40_000_000;
  max_states = 100_000;
  solver_evals = 60_000;
  total_solver_evals = max_int;
  path_fuel = 4_000_000;
  indirect_limit = 4;
  portfolio = false;
}

type stats = {
  mutable states : int;
  mutable instrs : int;
  mutable paths_completed : int;
  mutable timed_out : bool;
  solver : Solver.stats;
}

type result = {
  secret_input : Solver.model option;
  covered : (int, unit) Hashtbl.t;     (* probe byte offsets *)
  n_probes : int;
  time : float;
  stats : stats;
}

(* --- common setup ------------------------------------------------------------ *)

type target = {
  img : Image.t;
  func : string;
  n_inputs : int;            (* symbolic input bytes, composed into RDI *)
}

type ctx = {
  tgt : target;
  goal : goal;
  budget : budget;
  toa : bool;
  rng : Util.Rng.t;
  deadline : float;
  decode_cache : (int64, (X86.Isa.instr * int) option) Hashtbl.t;
  covered : (int, unit) Hashtbl.t;
  cov_range : (int64 * int64) option;  (* [lo, hi) of the __cov array *)
  stats : stats;
  mutable found : Solver.model option;
}

let input_expr n_inputs =
  let rec build i acc =
    if i < 0 then acc
    else
      build (i - 1)
        (E.bin E.Or (E.bin E.Shl acc (E.Const 8L)) (E.Input i))
  in
  build (n_inputs - 1) E.zero

let make_ctx ?(toa = false) ?(seed = 99) ~goal ~budget tgt =
  let cov_range =
    match Image.find_symbol tgt.img "__cov" with
    | Some s ->
      Some (s.Image.sym_addr,
            Int64.add s.Image.sym_addr (Int64.of_int s.Image.sym_size))
    | None -> None
  in
  { tgt; goal; budget; toa;
    rng = Util.Rng.create seed;
    deadline = Unix.gettimeofday () +. budget.wall_seconds;
    decode_cache = Hashtbl.create 1024;
    covered = Hashtbl.create 64;
    cov_range;
    stats = { states = 0; instrs = 0; paths_completed = 0; timed_out = false;
              solver = Solver.make_stats () };
    found = None }

let out_of_time ctx = Unix.gettimeofday () > ctx.deadline

let out_of_budget ctx =
  out_of_time ctx
  || ctx.stats.instrs > ctx.budget.max_instrs
  || ctx.stats.states > ctx.budget.max_states
  || ctx.stats.solver.Solver.evals >= ctx.budget.total_solver_evals

(* Build the initial symbolic state: like Runner.setup but with a symbolic
   RDI. *)
let initial_state ctx =
  let mem = Image.load ctx.tgt.img in
  let entry = Image.symbol_addr ctx.tgt.img ctx.tgt.func in
  let st = Sym_state.create mem entry in
  let sp = Int64.sub Image.stack_top 72L in
  Machine.Memory.write_u64 mem sp Image.exit_stub_addr;
  Sym_state.set st X86.Isa.RSP (E.Const sp);
  Sym_state.set st X86.Isa.RDI (input_expr ctx.tgt.n_inputs);
  st

(* per-state witness-driven memory model; the witness is fixed for the whole
   path, so one evaluator (and its DAG cache) is shared by every
   concretization *)
let model_for ctx witness_ref =
  let ev =
    E.evaluator ~input:(fun i ->
        let w = !witness_ref in
        if i < Array.length w then w.(i) else 0)
  in
  let concretize _st e = Some (ev e) in
  let on_write addr n =
    match ctx.cov_range, addr with
    | Some (lo, hi), E.Const a
      when Int64.compare lo a <= 0 && Int64.compare a hi < 0 ->
      for k = 0 to n - 1 do
        let off = Int64.to_int (Int64.sub a lo) + k in
        if Int64.compare (Int64.add a (Int64.of_int k)) hi < 0 then
          Hashtbl.replace ctx.covered off ()
      done
    | _, _ -> ()
  in
  { Sym_state.toa = ctx.toa; concretize; on_write }

let solver_mode ctx =
  if ctx.budget.portfolio then Solver.Portfolio else Solver.Pipeline

(* per-query eval budget, clamped to what the run-wide cap has left *)
let query_evals ctx =
  let remaining =
    ctx.budget.total_solver_evals - ctx.stats.solver.Solver.evals
  in
  min ctx.budget.solver_evals (max 0 remaining)

let solve ?seed ctx cs =
  let max_evals = query_evals ctx in
  if max_evals <= 0 then None
  else
    Solver.solve ~rng:(Util.Rng.split ctx.rng) ~stats:ctx.stats.solver
      ~deadline:ctx.deadline ~mode:(solver_mode ctx) ?seed
      ~n_inputs:ctx.tgt.n_inputs ~max_evals cs

(* on path completion (halt): try to conclude the secret goal *)
let check_secret ctx (st : Sym_state.t) witness =
  match ctx.goal with
  | G_coverage -> ()
  | G_secret ->
    if ctx.found = None then begin
      let rax = Sym_state.get st X86.Isa.RAX in
      let ev = E.evaluator ~input:(Solver.input_of_model witness) in
      if ev rax = 1L then ctx.found <- Some witness
      else
        let cs =
          { Solver.cond = E.bin E.Eq rax E.one; want = true } :: st.Sym_state.constraints
        in
        match solve ~seed:witness ctx cs with
        | Some m ->
          (* verify on the concrete obfuscated binary *)
          let input = Solver.input_of_model m in
          let arg = ref 0L in
          for i = ctx.tgt.n_inputs - 1 downto 0 do
            arg := Int64.logor (Int64.shift_left !arg 8) (Int64.of_int (input i))
          done;
          let r =
            Runner.call ~fuel:100_000_000 ctx.tgt.img ~func:ctx.tgt.func
              ~args:[ !arg ]
          in
          if r.Runner.status = Machine.Exec.Halted && r.Runner.rax = 1L then
            ctx.found <- Some m
        | None -> ()
    end

let goal_met ctx =
  match ctx.goal with
  | G_secret -> ctx.found <> None
  | G_coverage ->
    (match ctx.cov_range with
     | Some (lo, hi) -> Hashtbl.length ctx.covered >= Int64.to_int (Int64.sub hi lo)
     | None -> false)

(* --- single concolic path under a witness ------------------------------------ *)

type branch_event = {
  be_prefix : Solver.constr list;   (* constraints before this decision *)
  be_cond : E.t;                    (* condition or target expression *)
  be_taken : bool;                  (* concrete outcome (branches only) *)
  be_value : int64;                 (* concrete target (indirects only) *)
  be_is_indirect : bool;
  be_site : int64;
}

(* Run one path; returns the final state and the branch events, newest
   first. *)
let concolic_path ctx witness =
  let st = initial_state ctx in
  let w = ref witness in
  let model = model_for ctx w in
  let ev = E.evaluator ~input:(Solver.input_of_model witness) in
  let events = ref [] in
  let fuel = ref ctx.budget.path_fuel in
  let rec go () =
    if !fuel <= 0 || out_of_time ctx then `Fuel
    else begin
      decr fuel;
      ctx.stats.instrs <- ctx.stats.instrs + 1;
      let outcome = Sym_state.step ~model ~decode_cache:ctx.decode_cache st in
      (* pinned symbolic addresses are forkable decisions *)
      List.iter
        (fun (addr_e, a) ->
           events :=
             { be_prefix = st.Sym_state.constraints; be_cond = addr_e;
               be_taken = true; be_value = a; be_is_indirect = true;
               be_site = st.Sym_state.rip }
             :: !events)
        st.Sym_state.concretizations;
      st.Sym_state.concretizations <- [];
      match outcome with
      | Sym_state.O_ok -> go ()
      | Sym_state.O_halt -> `Halt
      | Sym_state.O_fault m -> `Fault m
      | Sym_state.O_branch (cond, taken, fall) ->
        let v = ev cond <> 0L in
        events :=
          { be_prefix = st.Sym_state.constraints; be_cond = cond;
            be_taken = v; be_value = 0L; be_is_indirect = false;
            be_site = fall }
          :: !events;
        Sym_state.constrain st cond v;
        st.Sym_state.rip <- (if v then taken else fall);
        go ()
      | Sym_state.O_indirect target ->
        let v = ev target in
        events :=
          { be_prefix = st.Sym_state.constraints; be_cond = target;
            be_taken = true; be_value = v; be_is_indirect = true;
            be_site = st.Sym_state.rip }
          :: !events;
        Sym_state.constrain st (E.bin E.Eq target (E.Const v)) true;
        st.Sym_state.rip <- v;
        go ()
    end
  in
  let outcome = go () in
  (st, !events, outcome)

(* --- DSE: generational search with CUPA-like scheduling ----------------------- *)

let model_key (m : Solver.model) = Array.to_list m

(* Export one engine run's aggregate stats into the metrics registry (cold
   path, once per dse/se invocation; solver-level counters are recorded by
   Solver.solve itself). *)
let publish_run name (r : result) =
  if Obs.Metrics.enabled () then begin
    let c = Obs.Metrics.count in
    c (name ^ ".runs") 1;
    c (name ^ ".states") r.stats.states;
    c (name ^ ".instrs") r.stats.instrs;
    c (name ^ ".paths_completed") r.stats.paths_completed;
    if r.stats.timed_out then c (name ^ ".timeouts") 1;
    if r.secret_input <> None then c (name ^ ".secrets_found") 1
  end

let dse ?(toa = false) ?(seed = 99) ~goal ~budget tgt =
  Obs.Trace.with_span "symex.dse" @@ fun () ->
  let ctx = make_ctx ~toa ~seed ~goal ~budget tgt in
  let t0 = Unix.gettimeofday () in
  let seen = Hashtbl.create 64 in
  (* pending negation jobs, grouped by branch site *)
  let groups : (int64, (Solver.constr list * Solver.constr * Solver.model) Queue.t) Hashtbl.t =
    Hashtbl.create 64
  in
  let add_job site job =
    let q =
      match Hashtbl.find_opt groups site with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.replace groups site q;
        q
    in
    Queue.add job q
  in
  let run_input witness =
    if not (Hashtbl.mem seen (model_key witness)) then begin
      Hashtbl.replace seen (model_key witness) ();
      ctx.stats.states <- ctx.stats.states + 1;
      let st, events, outcome = concolic_path ctx witness in
      (match outcome with
       | `Halt ->
         ctx.stats.paths_completed <- ctx.stats.paths_completed + 1;
         check_secret ctx st witness
       | `Fault _ | `Fuel -> ());
      (* queue negation jobs, shallowest first: deep negations are usually
         unsat and expensive to refute *)
      List.iter
        (fun be ->
           if be.be_is_indirect then
             add_job be.be_site
               (be.be_prefix,
                { Solver.cond = E.bin E.Eq be.be_cond (E.Const be.be_value);
                  want = false },
                witness)
           else
             add_job be.be_site
               (be.be_prefix,
                { Solver.cond = be.be_cond; want = not be.be_taken },
                witness))
        (List.rev events)
    end
  in
  run_input (Array.make (max ctx.tgt.n_inputs 1) 0);
  if not (goal_met ctx) then
    run_input (Array.init (max ctx.tgt.n_inputs 1) (fun _ -> Util.Rng.int ctx.rng 256));
  (* class-uniform rotation over branch sites *)
  let continue_ = ref true in
  while !continue_ && not (goal_met ctx) && not (out_of_budget ctx) do
    let sites = Hashtbl.fold (fun s q acc -> if Queue.is_empty q then acc else (s, q) :: acc) groups [] in
    if sites = [] then continue_ := false
    else
      List.iter
        (fun (_, q) ->
           if not (goal_met ctx) && not (out_of_budget ctx) && not (Queue.is_empty q)
           then begin
             let prefix, neg, seed = Queue.pop q in
             match solve ~seed ctx (neg :: prefix) with
             | Some m -> run_input m
             | None -> ()
           end)
        sites
  done;
  if out_of_time ctx then ctx.stats.timed_out <- true;
  let r =
    { secret_input = ctx.found;
      covered = ctx.covered;
      n_probes =
        (match ctx.cov_range with
         | Some (lo, hi) -> Int64.to_int (Int64.sub hi lo)
         | None -> 0);
      time = Unix.gettimeofday () -. t0;
      stats = ctx.stats }
  in
  publish_run "symex.dse" r;
  r

(* --- SE: eager forking exploration -------------------------------------------- *)

let se ?(toa = true) ?(seed = 99) ~goal ~budget tgt =
  Obs.Trace.with_span "symex.se" @@ fun () ->
  let ctx = make_ctx ~toa ~seed ~goal ~budget tgt in
  let t0 = Unix.gettimeofday () in
  (* DFS worklist of (state, witness) *)
  let stack = ref [ (initial_state ctx, Array.make (max ctx.tgt.n_inputs 1) 0) ] in
  while !stack <> [] && not (goal_met ctx) && not (out_of_budget ctx) do
    match !stack with
    | [] -> ()
    | (st, witness) :: rest ->
      stack := rest;
      ctx.stats.states <- ctx.stats.states + 1;
      let w = ref witness in
      let model = model_for ctx w in
      let ev = E.evaluator ~input:(Solver.input_of_model witness) in
      let fuel = ref ctx.budget.path_fuel in
      let rec go () =
        if !fuel <= 0 || out_of_time ctx then ()
        else begin
          decr fuel;
          ctx.stats.instrs <- ctx.stats.instrs + 1;
          match Sym_state.step ~model ~decode_cache:ctx.decode_cache st with
          | Sym_state.O_ok -> go ()
          | Sym_state.O_halt ->
            ctx.stats.paths_completed <- ctx.stats.paths_completed + 1;
            check_secret ctx st witness
          | Sym_state.O_fault _ -> ()
          | Sym_state.O_branch (cond, taken, fall) ->
            let v = ev cond <> 0L in
            (* fork the other side if feasible *)
            let other = Sym_state.copy st in
            Sym_state.constrain other cond (not v);
            (match solve ctx other.Sym_state.constraints with
             | Some m ->
               other.Sym_state.rip <- (if v then fall else taken);
               stack := (other, m) :: !stack
             | None -> ());
            Sym_state.constrain st cond v;
            st.Sym_state.rip <- (if v then taken else fall);
            go ()
          | Sym_state.O_indirect target ->
            let v = ev target in
            (* enumerate alternative targets *)
            let others =
              Solver.enumerate ~rng:(Util.Rng.split ctx.rng)
                ~stats:ctx.stats.solver ~deadline:ctx.deadline
                ~mode:(solver_mode ctx) ~n_inputs:ctx.tgt.n_inputs
                ~max_evals:(max 1 (query_evals ctx))
                ~limit:(ctx.budget.indirect_limit - 1)
                ({ Solver.cond = E.bin E.Eq target (E.Const v); want = false }
                 :: st.Sym_state.constraints)
                target
            in
            List.iter
              (fun (tv, m) ->
                 let other = Sym_state.copy st in
                 Sym_state.constrain other (E.bin E.Eq target (E.Const tv)) true;
                 other.Sym_state.rip <- tv;
                 stack := (other, m) :: !stack)
              others;
            Sym_state.constrain st (E.bin E.Eq target (E.Const v)) true;
            st.Sym_state.rip <- v;
            go ()
        end
      in
      go ()
  done;
  if out_of_time ctx then ctx.stats.timed_out <- true;
  let r =
    { secret_input = ctx.found;
      covered = ctx.covered;
      n_probes =
        (match ctx.cov_range with
         | Some (lo, hi) -> Int64.to_int (Int64.sub hi lo)
         | None -> 0);
      time = Unix.gettimeofday () -. t0;
      stats = ctx.stats }
  in
  publish_run "symex.se" r;
  r
