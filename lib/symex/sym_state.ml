(* Symbolic machine state and single-step transfer function: the x64-lite
   semantics of Machine.Exec mirrored over Expr values.

   Control flow stays concrete in RIP; branch and indirect-target decisions
   are surfaced as outcomes for the driving engine (SE forks, DSE follows the
   concrete witness).  Memory is a concrete base image plus a functional
   write log; symbolic addresses either produce first-class Load expressions
   (per-page theory-of-arrays flavour) or get concretized, depending on the
   engine's memory model (§VII-C3). *)

open X86.Isa
module E = Expr

module I64Map = Map.Make (Int64)

type smem = {
  base : Machine.Memory.t;
  cmap : (E.t * int * int) I64Map.t;    (* addr -> value, size, seq *)
  sym_writes : (E.t * E.t * int) list;  (* newest first; once non-empty, all
                                           writes go here to keep ordering *)
  seq : int;
}

type t = {
  mutable regs : E.t array;             (* 16 *)
  mutable f_cf : E.t;
  mutable f_zf : E.t;
  mutable f_sf : E.t;
  mutable f_of : E.t;
  mutable f_pf : E.t;
  mutable mem : smem;
  mutable rip : int64;
  mutable constraints : Solver.constr list;   (* newest first *)
  mutable steps : int;
  (* symbolic addresses pinned by the memory model, newest first; the
     engines drain these and treat them as forkable decisions (this is the
     "pressure on the memory model" P1 induces, §V-E) *)
  mutable concretizations : (E.t * int64) list;
}

type outcome =
  | O_ok
  | O_branch of E.t * int64 * int64     (* cond, taken rip, fall-through rip *)
  | O_indirect of E.t                   (* symbolic control-transfer target *)
  | O_halt
  | O_fault of string

exception Sym_fault of string

(* Memory-model policy: [toa] keeps symbolic loads symbolic; otherwise
   [concretize] pins the address (returns None when infeasible). *)
type mem_model = {
  toa : bool;
  concretize : t -> E.t -> int64 option;
  on_write : E.t -> int -> unit;     (* observation hook (coverage probes) *)
}

let create mem rip =
  { regs = Array.make 16 (E.Const 0L);
    f_cf = E.zero; f_zf = E.zero; f_sf = E.zero; f_of = E.zero; f_pf = E.zero;
    mem = { base = mem; cmap = I64Map.empty; sym_writes = []; seq = 0 };
    rip;
    constraints = [];
    steps = 0;
    concretizations = [] }

let copy t =
  { regs = Array.copy t.regs;
    f_cf = t.f_cf; f_zf = t.f_zf; f_sf = t.f_sf; f_of = t.f_of; f_pf = t.f_pf;
    mem = t.mem;
    rip = t.rip;
    constraints = t.constraints;
    steps = t.steps;
    concretizations = t.concretizations }

let get t r = t.regs.(reg_index r)
let set t r v = t.regs.(reg_index r) <- v

let constrain t cond want = t.constraints <- { Solver.cond; want } :: t.constraints

(* --- expression helpers ----------------------------------------------------- *)

let cbits w = Int64.of_int (width_bits w - 1)

let trunc w e = if w = W64 then e else E.un (E.Low (w, false)) e
let sext w e = if w = W64 then e else E.un (E.Low (w, true)) e

let sign_bit w e =
  E.bin E.And (E.bin E.Shr e (E.Const (cbits w))) E.one

let bnot01 e = E.bin E.Xor e E.one          (* negate a 0/1 expression *)
let bor01 a b = E.bin E.Or a b
let band01 a b = E.bin E.And a b
let bxor01 a b = E.bin E.Xor a b

let is_zero w e = E.bin E.Eq (trunc w e) E.zero

let parity_expr e =
  (* even parity of the low byte, producing 0/1 *)
  let b = E.bin E.And e (E.Const 0xFFL) in
  let p = E.bin E.Xor b (E.bin E.Shr b (E.Const 4L)) in
  let p = E.bin E.Xor p (E.bin E.Shr p (E.Const 2L)) in
  let p = E.bin E.Xor p (E.bin E.Shr p (E.Const 1L)) in
  bnot01 (E.bin E.And p E.one)

let carry_out_e w a b r =
  let open E in
  let m =
    bin Or (bin And a b) (bin And (bin Or a b) (un Not r))
  in
  sign_bit w m

let borrow_out_e w a b r =
  let open E in
  let m =
    bin Or (bin And (un Not a) b) (bin And (bin Or (un Not a) b) r)
  in
  sign_bit w m

let overflow_add_e w a b r =
  sign_bit w (E.bin E.And (E.bin E.Xor a r) (E.bin E.Xor b r))

let overflow_sub_e w a b r =
  sign_bit w (E.bin E.And (E.bin E.Xor a b) (E.bin E.Xor a r))

let set_zsp t w r =
  t.f_zf <- is_zero w r;
  t.f_sf <- sign_bit w r;
  t.f_pf <- parity_expr r

let cc_expr t = function
  | O -> t.f_of | NO -> bnot01 t.f_of
  | B -> t.f_cf | AE -> bnot01 t.f_cf
  | E -> t.f_zf | NE -> bnot01 t.f_zf
  | BE -> bor01 t.f_cf t.f_zf | A -> bnot01 (bor01 t.f_cf t.f_zf)
  | S -> t.f_sf | NS -> bnot01 t.f_sf
  | P -> t.f_pf | NP -> bnot01 t.f_pf
  | L -> bxor01 t.f_sf t.f_of | GE -> bnot01 (bxor01 t.f_sf t.f_of)
  | LE -> bor01 t.f_zf (bxor01 t.f_sf t.f_of)
  | G -> bnot01 (bor01 t.f_zf (bxor01 t.f_sf t.f_of))

(* --- memory ------------------------------------------------------------------ *)

let full_write_log m =
  m.sym_writes
  @ (I64Map.bindings m.cmap
     |> List.map (fun (a, (v, n, seq)) -> (seq, (E.Const a, v, n)))
     |> List.sort (fun (s1, _) (s2, _) -> compare s2 s1)
     |> List.map snd)

let to_expr_mem m : E.mem = { E.base = m.base; writes = full_write_log m }

(* byte expression at concrete address [a] from the concrete-address map or
   the base image; None when unmapped *)
let cmap_byte m a =
  let best = ref None in
  for k = 0 to 7 do
    let start = Int64.sub a (Int64.of_int k) in
    match I64Map.find_opt start m.cmap with
    | Some (v, n, seq) when k < n ->
      (match !best with
       | Some (_, bseq) when bseq >= seq -> ()
       | _ ->
         let byte =
           E.bin E.And
             (E.bin E.Shr v (E.Const (Int64.of_int (8 * k))))
             (E.Const 0xFFL)
         in
         best := Some (byte, seq))
    | Some _ | None -> ()
  done;
  match !best with
  | Some (e, _) -> Some e
  | None ->
    (match Machine.Memory.read_u8_opt m.base a with
     | Some v -> Some (E.Const (Int64.of_int v))
     | None -> None)

(* does any symbolic-addressed write possibly cover [a .. a+n)? *)
let sym_write_may_cover m =
  m.sym_writes <> []

let read_concrete t a n =
  let m = t.mem in
  if sym_write_may_cover m then
    (* sound fallback: keep the read symbolic over the full log *)
    E.Load (to_expr_mem m, E.Const a, n)
  else begin
    (* exact-match fast path *)
    match I64Map.find_opt a m.cmap with
    | Some (v, n', _) when n' = n -> v
    | Some _ | None ->
      let r = ref (E.Const 0L) in
      (try
         for i = n - 1 downto 0 do
           match cmap_byte m (Int64.add a (Int64.of_int i)) with
           | Some b -> r := E.bin E.Or (E.bin E.Shl !r (E.Const 8L)) b
           | None -> raise (Sym_fault (Printf.sprintf "read of unmapped 0x%Lx" a))
         done;
         !r
       with Sym_fault _ as e -> raise e)
  end

(* S2E-style store-back: when a register holding exactly the concretized
   expression exists, pin it to the constant; keeps state expressions small
   and mirrors how concretizing executors behave. *)
let store_back t addr_e a =
  for i = 0 to 15 do
    if t.regs.(i) == addr_e then t.regs.(i) <- E.Const a
  done

let mread ~model t addr_e n =
  match addr_e with
  | E.Const a -> read_concrete t a n
  | _ ->
    if model.toa then E.Load (to_expr_mem t.mem, addr_e, n)
    else
      (match model.concretize t addr_e with
       | Some a ->
         constrain t (E.bin E.Eq addr_e (E.Const a)) true;
         t.concretizations <- (addr_e, a) :: t.concretizations;
         store_back t addr_e a;
         read_concrete t a n
       | None -> raise (Sym_fault "unresolvable symbolic address"))

let mwrite ~model t addr_e n v =
  model.on_write addr_e n;
  let m = t.mem in
  match addr_e with
  | E.Const a when m.sym_writes = [] ->
    t.mem <- { m with cmap = I64Map.add a (v, n, m.seq) m.cmap; seq = m.seq + 1 }
  | E.Const _ ->
    t.mem <- { m with sym_writes = (addr_e, v, n) :: m.sym_writes; seq = m.seq + 1 }
  | _ ->
    if model.toa then
      t.mem <- { m with sym_writes = (addr_e, v, n) :: m.sym_writes; seq = m.seq + 1 }
    else
      (match model.concretize t addr_e with
       | Some a ->
         constrain t (E.bin E.Eq addr_e (E.Const a)) true;
         t.concretizations <- (addr_e, a) :: t.concretizations;
         store_back t addr_e a;
         t.mem <-
           { m with
             cmap = I64Map.add a (v, n, m.seq) m.cmap;
             sym_writes =
               (if m.sym_writes = [] then [] else (E.Const a, v, n) :: m.sym_writes);
             seq = m.seq + 1 }
       | None -> raise (Sym_fault "unresolvable symbolic address"))

(* --- operands ----------------------------------------------------------------- *)

let ea t (m : mem) =
  let b = match m.base with Some r -> get t r | None -> E.Const 0L in
  let i =
    match m.index with
    | Some (r, sc) -> E.bin E.Mul (get t r) (E.Const (Int64.of_int sc))
    | None -> E.Const 0L
  in
  E.bin E.Add (E.bin E.Add b i) (E.Const m.disp)

let read_operand ~model t w = function
  | Reg r -> trunc w (get t r)
  | Imm v -> E.Const (Machine.Semantics.truncate w v)
  | Mem m -> mread ~model t (ea t m) (width_bytes w)

let write_reg t w r v =
  match w with
  | W64 -> set t r v
  | W32 -> set t r (E.bin E.And v (E.Const 0xFFFFFFFFL))
  | W16 ->
    set t r
      (E.bin E.Or
         (E.bin E.And (get t r) (E.Const (-65536L)))
         (E.bin E.And v (E.Const 0xFFFFL)))
  | W8 ->
    set t r
      (E.bin E.Or
         (E.bin E.And (get t r) (E.Const (-256L)))
         (E.bin E.And v (E.Const 0xFFL)))

let write_operand ~model t w op v =
  match op with
  | Reg r -> write_reg t w r v
  | Mem m -> mwrite ~model t (ea t m) (width_bytes w) v
  | Imm _ -> raise (Sym_fault "write to immediate")

(* --- instruction transfer ------------------------------------------------------ *)

let flags_add t w a b r =
  t.f_cf <- carry_out_e w a b r;
  t.f_of <- overflow_add_e w a b r;
  set_zsp t w r

let flags_sub t w a b r =
  t.f_cf <- borrow_out_e w a b r;
  t.f_of <- overflow_sub_e w a b r;
  set_zsp t w r

let flags_logic t w r =
  t.f_cf <- E.zero;
  t.f_of <- E.zero;
  set_zsp t w r

let push64 ~model t v =
  let sp = E.bin E.Sub (get t RSP) (E.Const 8L) in
  set t RSP sp;
  mwrite ~model t sp 8 v

let pop64 ~model t =
  let sp = get t RSP in
  let v = mread ~model t sp 8 in
  (* re-read RSP: concretization may have pinned it (store_back) *)
  set t RSP (E.bin E.Add (get t RSP) (E.Const 8L));
  v

let exec_alu ~model t o w d s =
  let a = read_operand ~model t w d in
  let b = read_operand ~model t w s in
  let wr r = write_operand ~model t w d r in
  match o with
  | Add ->
    let r = trunc w (E.bin E.Add a b) in
    flags_add t w a b r; wr r
  | Adc ->
    let r = trunc w (E.bin E.Add (E.bin E.Add a b) t.f_cf) in
    flags_add t w a b r; wr r
  | Sub ->
    let r = trunc w (E.bin E.Sub a b) in
    flags_sub t w a b r; wr r
  | Sbb ->
    let r = trunc w (E.bin E.Sub (E.bin E.Sub a b) t.f_cf) in
    flags_sub t w a b r; wr r
  | Cmp ->
    let r = trunc w (E.bin E.Sub a b) in
    flags_sub t w a b r
  | And -> let r = E.bin E.And a b in flags_logic t w r; wr r
  | Or -> let r = E.bin E.Or a b in flags_logic t w r; wr r
  | Xor -> let r = E.bin E.Xor a b in flags_logic t w r; wr r
  | Test -> let r = E.bin E.And a b in flags_logic t w r

let exec_shift ~model t o w d count =
  let a = read_operand ~model t w d in
  let n_e =
    match count with
    | S_imm n ->
      E.Const (Int64.of_int (n land (if w = W64 then 63 else 31)))
    | S_cl ->
      E.bin E.And (get t RCX)
        (E.Const (Int64.of_int (if w = W64 then 63 else 31)))
  in
  let bits = Int64.of_int (width_bits w) in
  (* flag semantics approximated for symbolic counts: computed as if the
     masked count were non-zero (matches the concrete machine whenever the
     count is non-zero, which the generated code guarantees) *)
  let r =
    match o with
    | Shl -> trunc w (E.bin E.Shl a n_e)
    | Shr -> E.bin E.Shr (trunc w a) n_e
    | Sar -> trunc w (E.bin E.Sar (sext w a) n_e)
    | Rol ->
      trunc w
        (E.bin E.Or (E.bin E.Shl a n_e)
           (E.bin E.Shr (trunc w a) (E.bin E.Sub (E.Const bits) n_e)))
    | Ror ->
      trunc w
        (E.bin E.Or (E.bin E.Shr (trunc w a) n_e)
           (E.bin E.Shl a (E.bin E.Sub (E.Const bits) n_e)))
  in
  (match o with
   | Shl ->
     t.f_cf <-
       E.bin E.And
         (E.bin E.Shr a (E.bin E.Sub (E.Const bits) n_e)) E.one;
     t.f_of <- bxor01 (sign_bit w r) t.f_cf;
     set_zsp t w r
   | Shr ->
     t.f_cf <-
       E.bin E.And (E.bin E.Shr (trunc w a) (E.bin E.Sub n_e E.one)) E.one;
     t.f_of <- sign_bit w a;
     set_zsp t w r
   | Sar ->
     t.f_cf <-
       E.bin E.And (E.bin E.Sar (sext w a) (E.bin E.Sub n_e E.one)) E.one;
     t.f_of <- E.zero;
     set_zsp t w r
   | Rol -> t.f_cf <- E.bin E.And r E.one
   | Ror -> t.f_cf <- sign_bit w r);
  (* a zero count must leave the destination and flags untouched; handled
     here only for the destination via ite *)
  let r = E.ite (E.bin E.Eq n_e E.zero) (trunc w a) r in
  write_operand ~model t w d r

(* The Sdiv/Udiv expression algebra models the faulting cases away (zero
   divisor -> quotient 0, overflowing idiv -> 0), but the concrete machine
   raises #DE there.  Before committing the symbolic quotient, replay the
   division under the path's witness (the same evaluator the memory model
   concretizes addresses with) and fault exactly where Machine.Semantics
   would, so concolic fault paths match concrete execution. *)
let check_div_fault ~model t ~signed ~rdx ~rax ~v =
  match
    model.concretize t rdx, model.concretize t rax, model.concretize t v
  with
  | Some hi, Some lo, Some d ->
    (match
       if signed then Machine.Semantics.divmod_s128 hi lo d
       else Machine.Semantics.divmod_u128 hi lo d
     with
     | (_ : int64 * int64) -> ()
     | exception Division_by_zero -> raise (Sym_fault "divide by zero")
     | exception Machine.Semantics.Div_overflow ->
       raise (Sym_fault "divide overflow"))
  | _ -> ()   (* unresolvable under this model: keep the total algebra *)

let exec_muldiv ~model t o src =
  let v = read_operand ~model t W64 src in
  let rax = get t RAX in
  match o with
  | Mul ->
    let hi = E.bin E.Mulhi_u rax v in
    set t RAX (E.bin E.Mul rax v);
    set t RDX hi;
    let c = bnot01 (E.bin E.Eq hi E.zero) in
    t.f_cf <- c; t.f_of <- c
  | Imul1 ->
    let lo = E.bin E.Mul rax v in
    let hi = E.bin E.Mulhi_s rax v in
    set t RAX lo;
    set t RDX hi;
    let c = bnot01 (E.bin E.Eq hi (E.bin E.Sar lo (E.Const 63L))) in
    t.f_cf <- c; t.f_of <- c
  | Div ->
    check_div_fault ~model t ~signed:false ~rdx:(get t RDX) ~rax ~v;
    (* assumes the rdx=0 idiom (see DESIGN.md); a symbolic zero divisor
       evaluates to quotient 0 rather than faulting *)
    set t RDX (E.bin E.Urem rax v);
    set t RAX (E.bin E.Udiv rax v)
  | Idiv ->
    check_div_fault ~model t ~signed:true ~rdx:(get t RDX) ~rax ~v;
    set t RDX (E.bin E.Srem rax v);
    set t RAX (E.bin E.Sdiv rax v)

let lahf_expr t =
  let open E in
  let b =
    bin Or (bin Shl t.f_sf (Const 7L))
      (bin Or (bin Shl t.f_zf (Const 6L))
         (bin Or (bin Shl t.f_pf (Const 2L))
            (bin Or (Const 2L) t.f_cf)))
  in
  b

(* Execute the instruction at t.rip (already fetched as [i] with length
   [len]); returns the control-flow outcome. *)
let exec_instr ~model t i len =
  let next = Int64.add t.rip (Int64.of_int len) in
  t.rip <- next;
  t.steps <- t.steps + 1;
  match i with
  | Nop -> O_ok
  | Hlt -> O_halt
  | Lahf ->
    set t RAX
      (E.bin E.Or
         (E.bin E.And (get t RAX) (E.Const (Int64.lognot 0xFF00L)))
         (E.bin E.Shl (lahf_expr t) (E.Const 8L)));
    O_ok
  | Sahf ->
    let b = E.bin E.Shr (get t RAX) (E.Const 8L) in
    t.f_sf <- E.bin E.And (E.bin E.Shr b (E.Const 7L)) E.one;
    t.f_zf <- E.bin E.And (E.bin E.Shr b (E.Const 6L)) E.one;
    t.f_pf <- E.bin E.And (E.bin E.Shr b (E.Const 2L)) E.one;
    t.f_cf <- E.bin E.And b E.one;
    O_ok
  | Mov (w, d, s) ->
    write_operand ~model t w d (read_operand ~model t w s);
    O_ok
  | Movzx (dw, sw, r, s) ->
    write_reg t dw r (read_operand ~model t sw s);
    O_ok
  | Movsx (dw, sw, r, s) ->
    write_reg t dw r (trunc dw (sext sw (read_operand ~model t sw s)));
    O_ok
  | Lea (r, m) -> set t r (ea t m); O_ok
  | Push a -> push64 ~model t (read_operand ~model t W64 a); O_ok
  | Pop d ->
    let v = pop64 ~model t in
    write_operand ~model t W64 d v;
    O_ok
  | Alu (o, w, d, s) -> exec_alu ~model t o w d s; O_ok
  | Unary (o, w, d) ->
    let a = read_operand ~model t w d in
    (match o with
     | Neg ->
       let r = trunc w (E.un E.Neg a) in
       flags_sub t w E.zero a r;
       write_operand ~model t w d r
     | Not -> write_operand ~model t w d (trunc w (E.un E.Not a))
     | Inc ->
       let r = trunc w (E.bin E.Add a E.one) in
       t.f_of <- overflow_add_e w a E.one r;
       set_zsp t w r;
       write_operand ~model t w d r
     | Dec ->
       let r = trunc w (E.bin E.Sub a E.one) in
       t.f_of <- overflow_sub_e w a E.one r;
       set_zsp t w r;
       write_operand ~model t w d r);
    O_ok
  | Imul2 (w, r, s) ->
    let a = trunc w (get t r) in
    let b = read_operand ~model t w s in
    let full = E.bin E.Mul (sext w a) (sext w b) in
    let r64 = trunc w full in
    let c = bnot01 (E.bin E.Eq (sext w r64) full) in
    t.f_cf <- c; t.f_of <- c;
    set_zsp t w r64;
    write_reg t w r r64;
    O_ok
  | MulDiv (o, s) -> exec_muldiv ~model t o s; O_ok
  | Shift (o, w, d, c) -> exec_shift ~model t o w d c; O_ok
  | Cmov (cc, r, s) ->
    let v = read_operand ~model t W64 s in
    set t r (E.ite (cc_expr t cc) v (get t r));
    O_ok
  | Setcc (cc, d) -> write_operand ~model t W8 d (cc_expr t cc); O_ok
  | Jmp (J_rel d) -> t.rip <- Int64.add next (Int64.of_int d); O_ok
  | Jmp (J_op a) ->
    (match read_operand ~model t W64 a with
     | E.Const v -> t.rip <- v; O_ok
     | e -> O_indirect e)
  | Jcc (cc, d) ->
    let taken = Int64.add next (Int64.of_int d) in
    (match cc_expr t cc with
     | E.Const 0L -> O_ok
     | E.Const _ -> t.rip <- taken; O_ok
     | cond -> O_branch (cond, taken, next))
  | Call (J_rel d) ->
    push64 ~model t (E.Const next);
    t.rip <- Int64.add next (Int64.of_int d);
    O_ok
  | Call (J_op a) ->
    let target = read_operand ~model t W64 a in
    push64 ~model t (E.Const next);
    (match target with
     | E.Const v -> t.rip <- v; O_ok
     | e -> O_indirect e)
  | Ret ->
    (match pop64 ~model t with
     | E.Const v -> t.rip <- v; O_ok
     | e -> O_indirect e)
  | Leave ->
    set t RSP (get t RBP);
    let v = pop64 ~model t in
    set t RBP v;
    O_ok
  | Xchg (w, a, b) ->
    let va = read_operand ~model t w a in
    let vb = read_operand ~model t w b in
    write_operand ~model t w a vb;
    write_operand ~model t w b va;
    O_ok

(* Fetch + decode at t.rip from the base image, with a shared cache. *)
let step ~model ~decode_cache t =
  let rip = t.rip in
  let fetched =
    match Hashtbl.find_opt decode_cache rip with
    | Some r -> r
    | None ->
      let window =
        Machine.Memory.read_bytes_avail t.mem.base rip X86.Encode.max_instr_len
      in
      let r = X86.Decode.decode window 0 in
      Hashtbl.replace decode_cache rip r;
      r
  in
  match fetched with
  | None -> O_fault (Printf.sprintf "invalid instruction at 0x%Lx" rip)
  | Some (i, len) ->
    (match exec_instr ~model t i len with
     | o -> o
     | exception Sym_fault m -> O_fault m)
