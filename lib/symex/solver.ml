(* Constraint solver over input bytes.

   Evaluation-based: a candidate model is a byte assignment to the Input
   variables; constraints are checked by evaluating their expressions.  The
   pipeline is (1) exhaustive enumeration for tiny input spaces, (2)
   multi-restart stochastic local search guided by a structural distance
   function (SAGE-style fitness).  This is deliberately not an industrial
   SMT solver: paper inputs are 1-8 bytes and the obfuscations under study
   attack path explosion and aliasing, not solver algebra (DESIGN.md). *)

type constr = {
  cond : Expr.t;        (* boolean-valued expression *)
  want : bool;          (* require cond <> 0 (true) or cond = 0 (false) *)
}

type model = int array  (* one byte per input index *)

type stats = {
  mutable evals : int;  (* expression-set evaluations spent *)
}

let make_stats () = { evals = 0 }

exception Deadline

(* Deadline support: checked every few evaluations. *)
let check_deadline =
  let counter = ref 0 in
  fun deadline ->
    incr counter;
    if !counter land 63 = 0 && deadline > 0.0
       && Unix.gettimeofday () > deadline
    then raise Deadline

let input_of_model (m : model) i = if i < Array.length m then m.(i) else 0

(* --- compiled queries --------------------------------------------------------

   A query compiles all constraint conditions (plus comparison operands, for
   the distance function) into one flat Expr program evaluated per candidate
   model without allocation. *)

type item_kind =
  | K_flat
  | K_eq of int * int          (* node ids of the compared operands *)
  | K_cmp of int * int

type query = {
  comp : Expr.compiled;
  items : (int * bool * item_kind) array;   (* cond node id, want, kind *)
}

(* Strip boolean negations so the distance function sees the comparison
   underneath: !(e) wanted true == e wanted false, and the stepper encodes
   "not" over 0/1 values as xor 1. *)
let rec normalize cond want =
  match cond with
  | Expr.Un (Expr.Bool_not, e) -> normalize e (not want)
  | Expr.Bin (Expr.Xor, e, Expr.Const 1L) -> normalize e (not want)
  | Expr.Bin (Expr.Xor, Expr.Const 1L, e) -> normalize e (not want)
  | Expr.Bin (Expr.Eq, e, Expr.Const 0L) -> normalize e (not want)
  | Expr.Bin (Expr.Eq, Expr.Const 0L, e) -> normalize e (not want)
  | _ -> (cond, want)

let compile_query cs =
  let cs =
    List.map
      (fun c ->
         let cond, want = normalize c.cond c.want in
         { cond; want })
      cs
  in
  let conds = List.map (fun c -> c.cond) cs in
  let extras =
    List.concat_map
      (fun c ->
         match c.cond with
         | Expr.Bin ((Expr.Eq | Expr.Ult | Expr.Ule | Expr.Slt | Expr.Sle), a, b) ->
           [ a; b ]
         | _ -> [])
      cs
  in
  let comp = Expr.compile (conds @ extras) in
  let n = List.length cs in
  let extra_pos = ref n in
  let items =
    Array.of_list
      (List.mapi
         (fun i c ->
            let kind =
              match c.cond, c.want with
              | Expr.Bin (Expr.Eq, _, _), true ->
                let ia = comp.Expr.roots.(!extra_pos) in
                let ib = comp.Expr.roots.(!extra_pos + 1) in
                extra_pos := !extra_pos + 2;
                K_eq (ia, ib)
              | Expr.Bin ((Expr.Ult | Expr.Ule | Expr.Slt | Expr.Sle), _, _), _ ->
                let ia = comp.Expr.roots.(!extra_pos) in
                let ib = comp.Expr.roots.(!extra_pos + 1) in
                extra_pos := !extra_pos + 2;
                K_cmp (ia, ib)
              | Expr.Bin (Expr.Eq, _, _), false ->
                extra_pos := !extra_pos + 2;
                K_flat
              | _ -> K_flat
            in
            (comp.Expr.roots.(i), c.want, kind))
         cs)
  in
  { comp; items }

let popcount (v : int64) =
  let rec go acc v = if v = 0L then acc
    else go (acc + 1) (Int64.logand v (Int64.sub v 1L)) in
  go 0 v

let log2_dist a b =
  let d = Int64.abs (Int64.sub a b) in
  let rec bits acc v = if v = 0L then acc else bits (acc + 1) (Int64.shift_right_logical v 1) in
  bits 0 d

(* evaluate the query under [m]; returns (all satisfied, penalty) *)
let eval_query q (m : model) =
  let v = Expr.run q.comp ~input:(input_of_model m) in
  let pen = ref 0 in
  Array.iter
    (fun (ci, want, kind) ->
       let sat = (v.(ci) <> 0L) = want in
       if not sat then
         pen := !pen
                + (match kind with
                   | K_eq (ia, ib) ->
                     max 1
                       (min (popcount (Int64.logxor v.(ia) v.(ib)))
                          (log2_dist v.(ia) v.(ib)))
                   | K_cmp (ia, ib) -> max 1 (log2_dist v.(ia) v.(ib))
                   | K_flat -> 40))
    q.items;
  (!pen = 0, !pen)

let check (m : model) cs =
  let ev = Expr.evaluator ~input:(input_of_model m) in
  List.for_all (fun c -> (ev c.cond <> 0L) = c.want) cs

(* --- search ----------------------------------------------------------------- *)

(* Input indices the constraints actually mention. *)
let relevant_bytes cs =
  List.sort_uniq compare
    (List.concat_map (fun c -> Expr.input_bytes [] c.cond) cs)

let exhaustive ~stats ~deadline ~n_inputs ~max_evals q =
  let m = Array.make (max n_inputs 1) 0 in
  let total = min (1 lsl (8 * n_inputs)) max_evals in
  let rec go i =
    if i >= total then None
    else begin
      check_deadline deadline;
      for k = 0 to n_inputs - 1 do
        m.(k) <- (i lsr (8 * k)) land 0xff
      done;
      stats.evals <- stats.evals + 1;
      if fst (eval_query q m) then Some (Array.copy m) else go (i + 1)
    end
  in
  go 0

let local_search ~stats ~deadline ~rng ~n_inputs ~max_evals ~bytes ?seed q =
  let bytes = if bytes = [] then [ 0 ] else bytes in
  let m = Array.make (max n_inputs 1) 0 in
  (match seed with
   | Some s -> Array.blit s 0 m 0 (min (Array.length s) (Array.length m))
   | None -> ());
  let best = ref max_int in
  let result = ref None in
  let eval_penalty () =
    stats.evals <- stats.evals + 1;
    let sat, p = eval_query q m in
    if sat && !result = None then result := Some (Array.copy m);
    p
  in
  let restart () =
    Array.iteri (fun i _ -> m.(i) <- Util.Rng.int rng 256) m;
    best := eval_penalty ()
  in
  best := eval_penalty ();
  let budget = ref max_evals in
  let stagnation = ref 0 in
  while !result = None && !budget > 0 do
    decr budget;
    check_deadline deadline;
    let b = List.nth bytes (Util.Rng.int rng (List.length bytes)) in
    if b < Array.length m then begin
      let old = m.(b) in
      (match Util.Rng.int rng 4 with
       | 0 -> m.(b) <- Util.Rng.int rng 256
       | 1 -> m.(b) <- old lxor (1 lsl Util.Rng.int rng 8)
       | 2 -> m.(b) <- (old + 1) land 0xff
       | _ -> m.(b) <- (old - 1) land 0xff);
      let p = eval_penalty () in
      if p < !best then begin
        best := p;
        stagnation := 0
      end else begin
        m.(b) <- old;
        incr stagnation;
        if !stagnation > 400 then begin
          restart ();
          stagnation := 0
        end
      end
    end
  done;
  !result

(* Solve for a model of [cs] over [n_inputs] input bytes within
   [max_evals] expression evaluations. *)
(* Queries beyond this many constraints are refused outright, standing in
   for an SMT solver timing out on an oversized query (P1 concretization
   chains produce tens of thousands of path constraints, §V-E). *)
let max_constraints = 4000

(* Registry handles: registration is module-init cold path; per-query
   recording below is guarded on [Obs.Metrics.enabled] so a metrics-off run
   pays one bool load per solver call. *)
let m_queries = Obs.Metrics.counter "symex.solver.queries"
let m_sat = Obs.Metrics.counter "symex.solver.sat"
let m_unsat = Obs.Metrics.counter "symex.solver.unsat_or_unknown"
let m_deadline = Obs.Metrics.counter "symex.solver.deadline_hits"
let m_refused = Obs.Metrics.counter "symex.solver.refused_oversized"
let m_evals = Obs.Metrics.counter "symex.solver.evals"
let m_constraints = Obs.Metrics.histogram "symex.solver.constraints_per_query"

let solve ?(rng = Util.Rng.create 42) ?stats ?(deadline = 0.0) ?seed ~n_inputs
    ~max_evals cs =
  let stats = match stats with Some s -> s | None -> make_stats () in
  let evals0 = stats.evals in
  let record r =
    if Obs.Metrics.enabled () then begin
      Obs.Metrics.incr m_queries;
      Obs.Metrics.observe m_constraints (List.length cs);
      Obs.Metrics.add m_evals (stats.evals - evals0);
      Obs.Metrics.incr (if r = None then m_unsat else m_sat)
    end;
    r
  in
  record @@
  try
    if deadline > 0.0 && Unix.gettimeofday () > deadline then raise Deadline;
    if List.compare_length_with cs max_constraints > 0 then begin
      Obs.Metrics.incr m_refused;
      raise Deadline
    end;
    let q = compile_query cs in
    (* fast paths: the zero model, then the caller-provided seed (for branch
       negation the generating path's witness satisfies the whole prefix) *)
    let zero = Array.make (max n_inputs 1) 0 in
    stats.evals <- stats.evals + 1;
    if fst (eval_query q zero) then Some zero
    else
      let seed_hit =
        match seed with
        | Some s ->
          stats.evals <- stats.evals + 1;
          if fst (eval_query q s) then Some (Array.copy s) else None
        | None -> None
      in
      match seed_hit with
      | Some _ as r -> r
      | None ->
        let bytes = relevant_bytes cs in
        let ls_budget = if n_inputs <= 2 then max_evals / 4 else max_evals in
        (match
           local_search ~stats ~deadline ~rng ~n_inputs ~max_evals:ls_budget
             ~bytes ?seed q
         with
         | Some _ as r -> r
         | None ->
           if n_inputs <= 2 then
             exhaustive ~stats ~deadline ~n_inputs ~max_evals q
           else None)
  with Deadline ->
    Obs.Metrics.incr m_deadline;
    None

(* Enumerate up to [limit] distinct values of [e] consistent with [cs]
   (value-set sampling for indirect control transfers). *)
let enumerate ?(rng = Util.Rng.create 43) ?stats ?(deadline = 0.0) ~n_inputs
    ~max_evals ~limit cs e =
  let stats = match stats with Some s -> s | None -> make_stats () in
  let found = ref [] in
  let rec go excluded k =
    if k = 0 then ()
    else
      let cs' =
        List.map (fun v -> { cond = Expr.bin Expr.Eq e (Expr.Const v); want = false })
          excluded
        @ cs
      in
      match solve ~rng ~stats ~deadline ~n_inputs ~max_evals cs' with
      | None -> ()
      | Some m ->
        let v = (Expr.evaluator ~input:(input_of_model m)) e in
        found := (v, m) :: !found;
        go (v :: excluded) (k - 1)
  in
  go [] limit;
  List.rev !found
