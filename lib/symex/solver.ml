(* Constraint solver over input bytes.

   Evaluation-based: a candidate model is a byte assignment to the Input
   variables; constraints are checked by evaluating their expressions.  The
   serial pipeline is (1) exhaustive enumeration for tiny input spaces, (2)
   multi-restart stochastic local search guided by a structural distance
   function (SAGE-style fitness).  This is deliberately not an industrial
   SMT solver: paper inputs are 1-8 bytes and the obfuscations under study
   attack path explosion and aliasing, not solver algebra (DESIGN.md).

   On top of the seed pipeline this module adds the attacker-at-scale
   machinery (EXPERIMENTS.md, "Attack campaigns & solver portfolio"):

   - a normalized-query memo cache: queries are canonicalized (input
     alpha-renaming, commutative-operand ordering, constant folding) to a
     content digest and verdicts+models are memoized in memory and,
     optionally, in a _jobs_cache/-style on-disk store salted by
     [Memo.solver_version].  A cached model is never returned without
     re-validation against the *original* query, so a digest collision or a
     stale entry degrades to a recompute, never to a wrong answer;
   - incremental re-solving along DSE path prefixes: proven-unsat
     constraint sets are remembered (as sorted per-constraint digests) and
     any later query that merely *grows* such a set is unsat without
     search;
   - a portfolio mode racing four strategies (domain inversion, interval
     coordinate descent, exhaustive enumeration, stochastic local search)
     in round-robin time slices with early cancellation and per-strategy
     win/loss Obs counters. *)

type constr = {
  cond : Expr.t;        (* boolean-valued expression *)
  want : bool;          (* require cond <> 0 (true) or cond = 0 (false) *)
}

type model = int array  (* one byte per input index *)

(* A verdict distinguishes proven unsatisfiability from a search that
   merely ran out of budget: [V_unsat] may only be produced by a complete
   strategy (full enumeration of the space the constraints depend on), and
   is the only verdict that transfers to supersets of the constraint set. *)
type verdict =
  | V_sat of model
  | V_unsat
  | V_unknown

type stats = {
  mutable evals : int;  (* expression-set evaluations spent *)
}

let make_stats () = { evals = 0 }

exception Deadline

(* Deadline support: checked every few evaluations.  The stride is 16, not
   64 as in the seed: an oversized query can spend ~100us per evaluation,
   and the portfolio's early cancellation relies on strategies noticing the
   deadline between restarts, so the check has to be tight enough that one
   slice cannot overshoot a cell's wall budget by more than a few ms
   (test_portfolio.ml pins the overshoot bound). *)
let check_deadline =
  let counter = ref 0 in
  fun deadline ->
    incr counter;
    if !counter land 15 = 0 && deadline > 0.0
       && Unix.gettimeofday () > deadline
    then raise Deadline

let hit_deadline deadline =
  deadline > 0.0 && Unix.gettimeofday () > deadline

let input_of_model (m : model) i = if i < Array.length m then m.(i) else 0

(* --- compiled queries --------------------------------------------------------

   A query compiles all constraint conditions (plus comparison operands, for
   the distance function) into one flat Expr program evaluated per candidate
   model without allocation. *)

type item_kind =
  | K_flat
  | K_eq of int * int          (* node ids of the compared operands *)
  | K_cmp of int * int

type query = {
  comp : Expr.compiled;
  items : (int * bool * item_kind) array;   (* cond node id, want, kind *)
}

(* Strip boolean negations so the distance function sees the comparison
   underneath: !(e) wanted true == e wanted false, and the stepper encodes
   "not" over 0/1 values as xor 1. *)
let rec normalize cond want =
  match cond with
  | Expr.Un (Expr.Bool_not, e) -> normalize e (not want)
  | Expr.Bin (Expr.Xor, e, Expr.Const 1L) -> normalize e (not want)
  | Expr.Bin (Expr.Xor, Expr.Const 1L, e) -> normalize e (not want)
  | Expr.Bin (Expr.Eq, e, Expr.Const 0L) -> normalize e (not want)
  | Expr.Bin (Expr.Eq, Expr.Const 0L, e) -> normalize e (not want)
  | _ -> (cond, want)

let compile_query cs =
  let cs =
    List.map
      (fun c ->
         let cond, want = normalize c.cond c.want in
         { cond; want })
      cs
  in
  let conds = List.map (fun c -> c.cond) cs in
  let extras =
    List.concat_map
      (fun c ->
         match c.cond with
         | Expr.Bin ((Expr.Eq | Expr.Ult | Expr.Ule | Expr.Slt | Expr.Sle), a, b) ->
           [ a; b ]
         | _ -> [])
      cs
  in
  let comp = Expr.compile (conds @ extras) in
  let n = List.length cs in
  let extra_pos = ref n in
  let items =
    Array.of_list
      (List.mapi
         (fun i c ->
            let kind =
              match c.cond, c.want with
              | Expr.Bin (Expr.Eq, _, _), true ->
                let ia = comp.Expr.roots.(!extra_pos) in
                let ib = comp.Expr.roots.(!extra_pos + 1) in
                extra_pos := !extra_pos + 2;
                K_eq (ia, ib)
              | Expr.Bin ((Expr.Ult | Expr.Ule | Expr.Slt | Expr.Sle), _, _), _ ->
                let ia = comp.Expr.roots.(!extra_pos) in
                let ib = comp.Expr.roots.(!extra_pos + 1) in
                extra_pos := !extra_pos + 2;
                K_cmp (ia, ib)
              | Expr.Bin (Expr.Eq, _, _), false ->
                extra_pos := !extra_pos + 2;
                K_flat
              | _ -> K_flat
            in
            (comp.Expr.roots.(i), c.want, kind))
         cs)
  in
  { comp; items }

let popcount (v : int64) =
  let rec go acc v = if v = 0L then acc
    else go (acc + 1) (Int64.logand v (Int64.sub v 1L)) in
  go 0 v

let log2_dist a b =
  let d = Int64.abs (Int64.sub a b) in
  let rec bits acc v = if v = 0L then acc else bits (acc + 1) (Int64.shift_right_logical v 1) in
  bits 0 d

(* evaluate the query under [m]; returns (all satisfied, penalty) *)
let eval_query q (m : model) =
  let v = Expr.run q.comp ~input:(input_of_model m) in
  let pen = ref 0 in
  Array.iter
    (fun (ci, want, kind) ->
       let sat = (v.(ci) <> 0L) = want in
       if not sat then
         pen := !pen
                + (match kind with
                   | K_eq (ia, ib) ->
                     max 1
                       (min (popcount (Int64.logxor v.(ia) v.(ib)))
                          (log2_dist v.(ia) v.(ib)))
                   | K_cmp (ia, ib) -> max 1 (log2_dist v.(ia) v.(ib))
                   | K_flat -> 40))
    q.items;
  (!pen = 0, !pen)

let check (m : model) cs =
  let ev = Expr.evaluator ~input:(input_of_model m) in
  List.for_all (fun c -> (ev c.cond <> 0L) = c.want) cs

(* --- canonicalization --------------------------------------------------------

   The content address of a query.  Two queries that differ only by input
   alpha-renaming, commutative operand order, or foldable constants map to
   the same digest; the serialization is injective on canonical forms, so
   distinct semantics can only collide through MD5 itself — and a Sat hit
   is re-validated against the original query anyway.

   Queries mentioning symbolic memory ([Load]) close over a concrete memory
   snapshot that has no stable serialization; they are simply uncacheable.

   Shapes and serializations are per-node MD5 digests, memoized on physical
   identity, so heavily shared DAGs (loop-generated expressions) stay
   linear — expanding them to strings would be exponential. *)

exception Uncacheable

let commutative = function
  | Expr.Add | Expr.Mul | Expr.And | Expr.Or | Expr.Xor | Expr.Eq -> true
  | Expr.Sub | Expr.Udiv | Expr.Urem | Expr.Sdiv | Expr.Srem
  | Expr.Shl | Expr.Shr | Expr.Sar
  | Expr.Ult | Expr.Slt | Expr.Ule | Expr.Sle
  | Expr.Mulhi_u | Expr.Mulhi_s -> false

let bin_tag = function
  | Expr.Add -> "+" | Expr.Sub -> "-" | Expr.Mul -> "*" | Expr.Udiv -> "/u"
  | Expr.Urem -> "%u" | Expr.Sdiv -> "/s" | Expr.Srem -> "%s"
  | Expr.And -> "&" | Expr.Or -> "|" | Expr.Xor -> "^"
  | Expr.Shl -> "<<" | Expr.Shr -> ">>u" | Expr.Sar -> ">>s"
  | Expr.Eq -> "==" | Expr.Ult -> "<u" | Expr.Slt -> "<s"
  | Expr.Ule -> "<=u" | Expr.Sle -> "<=s"
  | Expr.Mulhi_u -> "*hu" | Expr.Mulhi_s -> "*hs"

let un_tag = function
  | Expr.Not -> "~"
  | Expr.Neg -> "neg"
  | Expr.Low (w, s) ->
    Printf.sprintf "low%d%c" (X86.Isa.width_bits w) (if s then 's' else 'z')
  | Expr.Bool_not -> "!"

type canon = {
  cq_digest : string;                 (* hex content address of the query *)
  cq_renaming : (int * int) list;     (* original input index -> canonical *)
  cq_n_canon : int;                   (* canonical variable count *)
}

(* Serialize one expression to a per-node digest under [rename] (canonical
   index of an original input index).  Commutative children are visited in
   shape order (ties keep source order), matching the traversal that
   assigned the canonical indices. *)
let canonicalize ~n_inputs cs =
  match
    (* 0. normalize want-polarity, fold constants through the smart
       constructors, and pin out-of-range inputs (always 0 in the engine's
       input model) to Const 0 so they don't consume canonical names *)
    let rebuild_tbl = Expr.Phys_tbl.create 64 in
    let rec rebuild e =
      match Expr.Phys_tbl.find_opt rebuild_tbl e with
      | Some r -> r
      | None ->
        let r =
          match e with
          | Expr.Const _ -> e
          | Expr.Input i -> if i >= n_inputs then Expr.Const 0L else e
          | Expr.Bin (op, a, b) -> Expr.bin op (rebuild a) (rebuild b)
          | Expr.Un (op, a) -> Expr.un op (rebuild a)
          | Expr.Ite (c, t, f) -> Expr.ite (rebuild c) (rebuild t) (rebuild f)
          | Expr.Load _ -> raise Uncacheable
        in
        Expr.Phys_tbl.replace rebuild_tbl e r;
        r
    in
    let cs =
      List.map
        (fun c ->
           (* fold first: polarity patterns like Eq(e, 0) are matched on the
              folded form, so raw and pre-folded spellings of the same
              query normalize identically *)
           let cond, want = normalize (rebuild c.cond) c.want in
           { cond; want })
        cs
    in
    (* 1. input-blind shapes, commutative operands in shape order *)
    let shape_tbl = Expr.Phys_tbl.create 256 in
    let rec shape e =
      match Expr.Phys_tbl.find_opt shape_tbl e with
      | Some s -> s
      | None ->
        let s =
          match e with
          | Expr.Const v -> Digest.string ("C" ^ Int64.to_string v)
          | Expr.Input _ -> Digest.string "I"
          | Expr.Bin (op, a, b) ->
            let sa = shape a and sb = shape b in
            let sa, sb =
              if commutative op && String.compare sb sa < 0 then (sb, sa)
              else (sa, sb)
            in
            Digest.string ("B" ^ bin_tag op ^ sa ^ sb)
          | Expr.Un (op, a) -> Digest.string ("U" ^ un_tag op ^ shape a)
          | Expr.Ite (c, t, f) ->
            Digest.string ("T" ^ shape c ^ shape t ^ shape f)
          | Expr.Load _ -> raise Uncacheable
        in
        Expr.Phys_tbl.replace shape_tbl e s;
        s
    in
    (* 2. constraint order: by (shape, want), stable *)
    let scs =
      List.stable_sort
        (fun (s1, c1) (s2, c2) ->
           match String.compare s1 s2 with
           | 0 -> compare c1.want c2.want
           | n -> n)
        (List.map (fun c -> (shape c.cond, c)) cs)
    in
    (* 3. canonical input names by first occurrence in the shape-ordered
       traversal *)
    let ren = Hashtbl.create 8 in
    let visited = Expr.Phys_tbl.create 256 in
    let rec visit e =
      if not (Expr.Phys_tbl.mem visited e) then begin
        Expr.Phys_tbl.replace visited e ();
        match e with
        | Expr.Const _ -> ()
        | Expr.Input i ->
          if not (Hashtbl.mem ren i) then
            Hashtbl.replace ren i (Hashtbl.length ren)
        | Expr.Bin (op, a, b) ->
          if commutative op && String.compare (shape b) (shape a) < 0
          then (visit b; visit a)
          else (visit a; visit b)
        | Expr.Un (_, a) -> visit a
        | Expr.Ite (c, t, f) -> visit c; visit t; visit f
        | Expr.Load _ -> raise Uncacheable
      end
    in
    List.iter (fun (_, c) -> visit c.cond) scs;
    (* 4. final per-node digests under the renaming *)
    let ser_tbl = Expr.Phys_tbl.create 256 in
    let rec ser e =
      match Expr.Phys_tbl.find_opt ser_tbl e with
      | Some s -> s
      | None ->
        let s =
          match e with
          | Expr.Const v -> Digest.string ("c" ^ Int64.to_string v)
          | Expr.Input i ->
            Digest.string ("i" ^ string_of_int (Hashtbl.find ren i))
          | Expr.Bin (op, a, b) ->
            let a, b =
              if commutative op && String.compare (shape b) (shape a) < 0
              then (b, a)
              else (a, b)
            in
            Digest.string ("b" ^ bin_tag op ^ ser a ^ ser b)
          | Expr.Un (op, a) -> Digest.string ("u" ^ un_tag op ^ ser a)
          | Expr.Ite (c, t, f) -> Digest.string ("t" ^ ser c ^ ser t ^ ser f)
          | Expr.Load _ -> raise Uncacheable
        in
        Expr.Phys_tbl.replace ser_tbl e s;
        s
    in
    let body =
      String.concat ""
        (List.map
           (fun (_, c) -> ser c.cond ^ (if c.want then "T" else "F"))
           scs)
    in
    let k = Hashtbl.length ren in
    { cq_digest = Digest.to_hex (Digest.string (body ^ "#" ^ string_of_int k));
      cq_renaming = Hashtbl.fold (fun o c acc -> (o, c) :: acc) ren [];
      cq_n_canon = k }
  with
  | c -> Some c
  | exception Uncacheable -> None

(* Concrete (unrenamed, unsorted-set) digest of one constraint: the element
   key for unsat-core subset matching.  Structural, so it matches across
   paths even when the DSE engine rebuilds physically distinct but equal
   expressions. *)
let constraint_digest c =
  match
    let tbl = Expr.Phys_tbl.create 64 in
    let rec ser e =
      match Expr.Phys_tbl.find_opt tbl e with
      | Some s -> s
      | None ->
        let s =
          match e with
          | Expr.Const v -> Digest.string ("c" ^ Int64.to_string v)
          | Expr.Input i -> Digest.string ("x" ^ string_of_int i)
          | Expr.Bin (op, a, b) -> Digest.string ("b" ^ bin_tag op ^ ser a ^ ser b)
          | Expr.Un (op, a) -> Digest.string ("u" ^ un_tag op ^ ser a)
          | Expr.Ite (c, t, f) -> Digest.string ("t" ^ ser c ^ ser t ^ ser f)
          | Expr.Load _ -> raise Uncacheable
        in
        Expr.Phys_tbl.replace tbl e s;
        s
    in
    let cond, want = normalize c.cond c.want in
    ser cond ^ (if want then "T" else "F")
  with
  | s -> Some s
  | exception Uncacheable -> None

(* Sorted concrete digests of a whole query, or None if any constraint is
   uncacheable. *)
let concrete_digests cs =
  let rec go acc = function
    | [] -> Some (List.sort String.compare acc)
    | c :: rest ->
      (match constraint_digest c with
       | Some d -> go (d :: acc) rest
       | None -> None)
  in
  go [] cs

(* sorted-list subset test: is [a] contained in [b]? *)
let rec subset a b =
  match a, b with
  | [], _ -> true
  | _ :: _, [] -> false
  | x :: xs, y :: ys ->
    let c = String.compare x y in
    if c = 0 then subset xs ys
    else if c > 0 then subset a ys
    else false

(* --- memo cache --------------------------------------------------------------

   Verdict+model store keyed by canonical digest.  Always an in-memory
   table; optionally backed by a _jobs_cache/-style on-disk store
   ([Jobs.Cache] with an explicit salt), so campaign runs share solver work
   across processes and across invocations.  The salt is the declared
   solver version, not the executable digest: memo entries are plain data
   (byte arrays and verdict tags) whose meaning survives rebuilds — bump
   [solver_version] when the solver's semantics change. *)

type memo_entry =
  | ME_sat of int array           (* model in canonical variable space *)
  | ME_unsat                      (* complete-strategy proof *)
  | ME_unknown of int             (* survived a search of this many evals *)

module Memo = struct
  let solver_version = "solver-memo/v1"

  type t = {
    table : (string, memo_entry) Hashtbl.t;
    disk : Jobs.Cache.t option;
    (* proven-unsat constraint sets as sorted concrete digests: any query
       that grows one of these is unsat without search (bounded ring) *)
    cores : string list array;
    mutable n_cores : int;
    mutable hits : int;
    mutable misses : int;
    mutable stores : int;
    mutable invalid : int;        (* cached models that failed re-validation *)
    mutable prefix_hits : int;    (* unsat-core subset hits *)
  }

  let max_cores = 128

  let create ?dir () =
    { table = Hashtbl.create 256;
      disk =
        Option.map (fun dir -> Jobs.Cache.create ~salt:solver_version ~dir ())
          dir;
      cores = Array.make max_cores [];
      n_cores = 0;
      hits = 0; misses = 0; stores = 0; invalid = 0; prefix_hits = 0 }

  let find t digest =
    match Hashtbl.find_opt t.table digest with
    | Some e -> Some e
    | None ->
      Option.bind t.disk (fun c ->
          match Jobs.Cache.find c digest with
          | Some (e : memo_entry) ->
            Hashtbl.replace t.table digest e;
            Some e
          | None -> None)

  let store t digest e =
    t.stores <- t.stores + 1;
    Hashtbl.replace t.table digest e;
    match t.disk with
    | Some c -> Jobs.Cache.store c digest e
    | None -> ()

  let add_core t ds =
    t.cores.(t.n_cores mod max_cores) <- ds;
    t.n_cores <- t.n_cores + 1

  let unsat_superset t ds =
    let n = min t.n_cores max_cores in
    let rec go i =
      i < n && (let core = t.cores.(i) in core <> [] && subset core ds || go (i + 1))
    in
    go 0
end

(* Process-global memo, inherited through lib/jobs forks; campaign workers
   and the engines pick it up without any per-call plumbing. *)
let global_memo : Memo.t option ref = ref None
let set_memo m = global_memo := m

(* --- search ----------------------------------------------------------------- *)

(* Input indices the constraints actually mention (restricted to the live
   input window; out-of-range bytes are identically 0). *)
let relevant_bytes ~n_inputs cs =
  List.filter (fun b -> b < max n_inputs 1)
    (List.sort_uniq compare
       (List.concat_map (fun c -> Expr.input_bytes [] c.cond) cs))

(* Exhaustive sweep of the full [n_inputs] byte space (seed pipeline).
   Returns a model, or the completeness of the failed sweep. *)
let exhaustive ~stats ~deadline ~n_inputs ~max_evals q =
  let m = Array.make (max n_inputs 1) 0 in
  let space = 1 lsl (8 * n_inputs) in
  let total = min space max_evals in
  let rec go i =
    if i >= total then Error (total >= space)
    else begin
      check_deadline deadline;
      for k = 0 to n_inputs - 1 do
        m.(k) <- (i lsr (8 * k)) land 0xff
      done;
      stats.evals <- stats.evals + 1;
      if fst (eval_query q m) then Ok (Array.copy m) else go (i + 1)
    end
  in
  go 0

let local_search ~stats ~deadline ~rng ~n_inputs ~max_evals ~bytes ?seed q =
  let bytes = if bytes = [] then [ 0 ] else bytes in
  let m = Array.make (max n_inputs 1) 0 in
  (match seed with
   | Some s -> Array.blit s 0 m 0 (min (Array.length s) (Array.length m))
   | None -> ());
  let best = ref max_int in
  let result = ref None in
  let eval_penalty () =
    stats.evals <- stats.evals + 1;
    let sat, p = eval_query q m in
    if sat && !result = None then result := Some (Array.copy m);
    p
  in
  let restart () =
    (* a restart is a full re-evaluation too: without this check a search
       thrashing through restarts only polls the deadline every stride *)
    check_deadline deadline;
    Array.iteri (fun i _ -> m.(i) <- Util.Rng.int rng 256) m;
    best := eval_penalty ()
  in
  best := eval_penalty ();
  let budget = ref max_evals in
  let stagnation = ref 0 in
  while !result = None && !budget > 0 do
    decr budget;
    check_deadline deadline;
    let b = List.nth bytes (Util.Rng.int rng (List.length bytes)) in
    if b < Array.length m then begin
      let old = m.(b) in
      (match Util.Rng.int rng 4 with
       | 0 -> m.(b) <- Util.Rng.int rng 256
       | 1 -> m.(b) <- old lxor (1 lsl Util.Rng.int rng 8)
       | 2 -> m.(b) <- (old + 1) land 0xff
       | _ -> m.(b) <- (old - 1) land 0xff);
      let p = eval_penalty () in
      if p < !best then begin
        best := p;
        stagnation := 0
      end else begin
        m.(b) <- old;
        incr stagnation;
        if !stagnation > 400 then begin
          restart ();
          stagnation := 0
        end
      end
    end
  done;
  !result

(* --- portfolio strategies ----------------------------------------------------

   Each strategy is a resumable closure advanced in eval-bounded slices by
   the race driver.  [Sr_exhausted true] is a completeness claim: the
   strategy enumerated every assignment the constraints can distinguish and
   found nothing, which proves unsat. *)

type step_result =
  | Sr_found of model
  | Sr_exhausted of bool           (* true: complete, unsat is proven *)
  | Sr_running

type strategy = {
  st_name : string;
  st_step : int -> step_result;    (* run up to [k] evaluations *)
}

(* Enumeration over the relevant bytes only (other bytes stay 0, which is
   sound because the constraints do not mention them): complete whenever
   the restricted space fits in the budget. *)
let strat_enumeration ~stats ~deadline ~n_inputs ~bytes q =
  let m = Array.make (max n_inputs 1) 0 in
  let bytes = Array.of_list bytes in
  let nb = Array.length bytes in
  let space = if nb > 3 then max_int else 1 lsl (8 * nb) in
  let i = ref 0 in
  let step k =
    let stop = min space (!i + k) in
    let rec go () =
      if !i >= stop then
        if !i >= space then Sr_exhausted (space < max_int) else Sr_running
      else begin
        check_deadline deadline;
        for b = 0 to nb - 1 do
          m.(bytes.(b)) <- (!i lsr (8 * b)) land 0xff
        done;
        incr i;
        stats.evals <- stats.evals + 1;
        if fst (eval_query q m) then Sr_found (Array.copy m) else go ()
      end
    in
    go ()
  in
  { st_name = "enumeration"; st_step = step }

(* Domain inversion: constraints that mention a single input byte restrict
   that byte's domain by direct scan; the query then reduces to the
   cartesian product of the restricted domains.  An empty domain — or a
   fully scanned product — is a completeness proof, because any model must
   lie inside the product. *)
let strat_inversion ~stats ~deadline ~n_inputs ~bytes q cs =
  let m = Array.make (max n_inputs 1) 0 in
  let bytes = Array.of_list bytes in
  let nb = Array.length bytes in
  (* per-byte singleton constraint programs, compiled once *)
  let single =
    Array.map
      (fun b ->
         let cs' =
           List.filter
             (fun c -> Expr.input_bytes [] c.cond = [ b ])
             cs
         in
         match cs' with [] -> None | cs' -> Some (compile_query cs'))
      bytes
  in
  let domains = Array.make (max nb 1) [||] in
  let phase = ref 0 in           (* 0: restrict; 1: product enumeration *)
  let cursor = ref 0 in
  let prod_i = ref 0 in
  let prod_total = ref 1 in
  let complete = ref true in
  let step k =
    let spent = ref 0 in
    let rec go () =
      if !spent >= k then Sr_running
      else if !phase = 0 then begin
        if !cursor >= nb then begin
          (* move to enumeration of the product *)
          phase := 1;
          prod_total :=
            Array.fold_left
              (fun acc d ->
                 if acc >= 1 lsl 22 then max_int
                 else min (1 lsl 22) (acc * Array.length d))
              1 (Array.sub domains 0 nb);
          if nb = 0 then prod_total := 1;
          go ()
        end else begin
          let b = bytes.(!cursor) in
          let dom = ref [] in
          (match single.(!cursor) with
           | None -> dom := List.init 256 Fun.id
           | Some sq ->
             for v = 255 downto 0 do
               check_deadline deadline;
               m.(b) <- v;
               stats.evals <- stats.evals + 1;
               incr spent;
               if fst (eval_query sq m) then dom := v :: !dom
             done;
             m.(b) <- 0);
          domains.(!cursor) <- Array.of_list !dom;
          incr cursor;
          if !dom = [] then Sr_exhausted true   (* empty domain: proven unsat *)
          else go ()
        end
      end else if !prod_i >= !prod_total then
        Sr_exhausted (!prod_total < max_int && !complete)
      else begin
        check_deadline deadline;
        (* decode mixed-radix index into the restricted domains *)
        let ix = ref !prod_i in
        for j = 0 to nb - 1 do
          let d = domains.(j) in
          let n = Array.length d in
          m.(bytes.(j)) <- d.(!ix mod n);
          ix := !ix / n
        done;
        incr prod_i;
        incr spent;
        stats.evals <- stats.evals + 1;
        if fst (eval_query q m) then Sr_found (Array.copy m) else go ()
      end
    in
    if !prod_total = max_int then complete := false;
    go ()
  in
  { st_name = "inversion"; st_step = step }

(* Interval/coordinate descent: deterministically sweep each byte over its
   full range keeping the penalty-minimizing value; stop when a full pass
   improves nothing. *)
let strat_interval ~stats ~deadline ~n_inputs ~bytes ?seed q =
  let m = Array.make (max n_inputs 1) 0 in
  (match seed with
   | Some s -> Array.blit s 0 m 0 (min (Array.length s) (Array.length m))
   | None -> ());
  let bytes = Array.of_list bytes in
  let nb = Array.length bytes in
  let cursor = ref 0 in
  let improved = ref false in
  let best = ref max_int in
  let step k =
    if nb = 0 then Sr_exhausted false
    else begin
      let budget = ref k in
      let rec go () =
        if !budget <= 0 then Sr_running
        else begin
          let b = bytes.(!cursor mod nb) in
          let best_v = ref m.(b) in
          let found = ref None in
          for v = 0 to 255 do
            check_deadline deadline;
            m.(b) <- v;
            stats.evals <- stats.evals + 1;
            decr budget;
            let sat, p = eval_query q m in
            if sat && !found = None then found := Some (Array.copy m);
            if p < !best then begin
              best := p;
              best_v := v;
              improved := true
            end
          done;
          match !found with
          | Some model -> Sr_found model
          | None ->
            m.(b) <- !best_v;
            incr cursor;
            if !cursor mod nb = 0 then begin
              if not !improved then Sr_exhausted false
              else begin
                improved := false;
                go ()
              end
            end
            else go ()
        end
      in
      go ()
    end
  in
  { st_name = "interval"; st_step = step }

(* Stochastic local search as a resumable strategy (same move set as the
   serial pipeline's [local_search]). *)
let strat_local_search ~stats ~deadline ~rng ~n_inputs ~bytes ?seed q =
  let bytes = if bytes = [] then [ 0 ] else bytes in
  let m = Array.make (max n_inputs 1) 0 in
  (match seed with
   | Some s -> Array.blit s 0 m 0 (min (Array.length s) (Array.length m))
   | None -> ());
  let best = ref max_int in
  let stagnation = ref 0 in
  let started = ref false in
  let step k =
    let result = ref None in
    let eval_penalty () =
      stats.evals <- stats.evals + 1;
      let sat, p = eval_query q m in
      if sat && !result = None then result := Some (Array.copy m);
      p
    in
    if not !started then begin
      started := true;
      best := eval_penalty ()
    end;
    let budget = ref k in
    while !result = None && !budget > 0 do
      decr budget;
      check_deadline deadline;
      let b = List.nth bytes (Util.Rng.int rng (List.length bytes)) in
      if b < Array.length m then begin
        let old = m.(b) in
        (match Util.Rng.int rng 4 with
         | 0 -> m.(b) <- Util.Rng.int rng 256
         | 1 -> m.(b) <- old lxor (1 lsl Util.Rng.int rng 8)
         | 2 -> m.(b) <- (old + 1) land 0xff
         | _ -> m.(b) <- (old - 1) land 0xff);
        let p = eval_penalty () in
        if p < !best then begin
          best := p;
          stagnation := 0
        end else begin
          m.(b) <- old;
          incr stagnation;
          if !stagnation > 400 then begin
            check_deadline deadline;
            Array.iteri (fun i _ -> m.(i) <- Util.Rng.int rng 256) m;
            best := eval_penalty ();
            stagnation := 0
          end
        end
      end
    done;
    match !result with Some model -> Sr_found model | None -> Sr_running
  in
  { st_name = "local_search"; st_step = step }

(* --- metrics ----------------------------------------------------------------- *)

(* Registry handles: registration is module-init cold path; per-query
   recording below is guarded on [Obs.Metrics.enabled] so a metrics-off run
   pays one bool load per solver call. *)
let m_queries = Obs.Metrics.counter "symex.solver.queries"
let m_sat = Obs.Metrics.counter "symex.solver.sat"
let m_unsat = Obs.Metrics.counter "symex.solver.unsat_or_unknown"
let m_deadline = Obs.Metrics.counter "symex.solver.deadline_hits"
let m_refused = Obs.Metrics.counter "symex.solver.refused_oversized"
let m_evals = Obs.Metrics.counter "symex.solver.evals"
let m_constraints = Obs.Metrics.histogram "symex.solver.constraints_per_query"
let m_memo_hits = Obs.Metrics.counter "symex.solver.memo.hits"
let m_memo_misses = Obs.Metrics.counter "symex.solver.memo.misses"
let m_memo_invalid = Obs.Metrics.counter "symex.solver.memo.revalidation_failures"
let m_memo_prefix = Obs.Metrics.counter "symex.solver.memo.prefix_unsat_hits"
let m_races = Obs.Metrics.counter "symex.solver.portfolio.races"

let strategy_names = [ "inversion"; "interval"; "enumeration"; "local_search" ]

let m_wins =
  List.map
    (fun n -> (n, Obs.Metrics.counter ("symex.solver.portfolio.win." ^ n)))
    strategy_names

let m_losses =
  List.map
    (fun n -> (n, Obs.Metrics.counter ("symex.solver.portfolio.loss." ^ n)))
    strategy_names

(* --- portfolio race ----------------------------------------------------------- *)

(* Round-robin time slices over the four strategies with early
   cancellation: the first Sat model — or the first completeness proof —
   settles the race.  Single-threaded and seeded, so the outcome is a
   function of (query, rng seed, budget) alone. *)
let slice_evals = 512

let portfolio ~stats ~deadline ~rng ?seed ~n_inputs ~max_evals cs q =
  let bytes = relevant_bytes ~n_inputs cs in
  let strategies =
    (* fixed spawn order; each gets an independent, schedule-free stream *)
    let r1 = Util.Rng.split rng in
    [ strat_inversion ~stats ~deadline ~n_inputs ~bytes q cs;
      strat_interval ~stats ~deadline ~n_inputs ~bytes ?seed q;
      strat_enumeration ~stats ~deadline ~n_inputs ~bytes q;
      strat_local_search ~stats ~deadline ~rng:r1 ~n_inputs ~bytes ?seed q ]
  in
  let alive = Array.make (List.length strategies) true in
  let strategies = Array.of_list strategies in
  let evals0 = stats.evals in
  if Obs.Metrics.enabled () then Obs.Metrics.incr m_races;
  let record_outcome winner =
    if Obs.Metrics.enabled () then
      Array.iteri
        (fun i s ->
           if i = winner then
             Obs.Metrics.incr (List.assoc s.st_name m_wins)
           else if alive.(i) then
             Obs.Metrics.incr (List.assoc s.st_name m_losses))
        strategies
  in
  let verdict = ref None in
  let any_alive () = Array.exists Fun.id alive in
  while !verdict = None && any_alive ()
        && stats.evals - evals0 < max_evals do
    (* the slice boundary is the portfolio's own deadline poll: a strategy
       mid-restart cannot push the race past the cell's wall budget *)
    if hit_deadline deadline then raise Deadline;
    Array.iteri
      (fun i s ->
         if !verdict = None && alive.(i)
            && stats.evals - evals0 < max_evals then
           match s.st_step slice_evals with
           | Sr_found m ->
             record_outcome i;
             verdict := Some (V_sat m)
           | Sr_exhausted true ->
             record_outcome i;
             verdict := Some V_unsat
           | Sr_exhausted false -> alive.(i) <- false
           | Sr_running -> ())
      strategies
  done;
  match !verdict with Some v -> v | None -> V_unknown

(* --- solve ------------------------------------------------------------------- *)

(* Queries beyond this many constraints are refused outright, standing in
   for an SMT solver timing out on an oversized query (P1 concretization
   chains produce tens of thousands of path constraints, §V-E). *)
let max_constraints = 4000

type mode = Pipeline | Portfolio

(* The seed pipeline, upgraded to report completeness: zero model, caller
   seed, stochastic local search, then exhaustive enumeration for tiny
   input spaces.  [V_unsat] only when the exhaustive sweep covered the
   whole space. *)
let pipeline ~stats ~deadline ~rng ?seed ~n_inputs ~max_evals cs q =
  let zero = Array.make (max n_inputs 1) 0 in
  stats.evals <- stats.evals + 1;
  if fst (eval_query q zero) then V_sat zero
  else
    let seed_hit =
      match seed with
      | Some s ->
        stats.evals <- stats.evals + 1;
        if fst (eval_query q s) then Some (Array.copy s) else None
      | None -> None
    in
    match seed_hit with
    | Some m -> V_sat m
    | None ->
      let bytes = relevant_bytes ~n_inputs cs in
      let ls_budget = if n_inputs <= 2 then max_evals / 4 else max_evals in
      (match
         local_search ~stats ~deadline ~rng ~n_inputs ~max_evals:ls_budget
           ~bytes ?seed q
       with
       | Some m -> V_sat m
       | None ->
         if n_inputs <= 2 then
           match exhaustive ~stats ~deadline ~n_inputs ~max_evals q with
           | Ok m -> V_sat m
           | Error complete -> if complete then V_unsat else V_unknown
         else V_unknown)

(* Solve for a verdict on [cs] over [n_inputs] input bytes within
   [max_evals] expression evaluations.  [memo] overrides the process-global
   memo installed with [set_memo] (pass [Some m] to force one, or rely on
   the global).  Cached Sat models are re-validated against the original
   query before being returned. *)
let solve_verdict ?(rng = Util.Rng.create 42) ?stats ?(deadline = 0.0)
    ?(mode = Pipeline) ?memo ?seed ~n_inputs ~max_evals cs =
  let stats = match stats with Some s -> s | None -> make_stats () in
  let memo = match memo with Some m -> Some m | None -> !global_memo in
  let evals0 = stats.evals in
  let record r =
    if Obs.Metrics.enabled () then begin
      Obs.Metrics.incr m_queries;
      Obs.Metrics.observe m_constraints (List.length cs);
      Obs.Metrics.add m_evals (stats.evals - evals0);
      Obs.Metrics.incr (match r with V_sat _ -> m_sat | _ -> m_unsat)
    end;
    r
  in
  record @@
  if List.compare_length_with cs max_constraints > 0 then begin
    Obs.Metrics.incr m_refused;
    V_unknown
  end
  else
  try
    if hit_deadline deadline then raise Deadline;
    (* memo lookup before any search *)
    let canon =
      match memo with
      | None -> None
      | Some _ -> canonicalize ~n_inputs cs
    in
    let cached_seed = ref None in
    let memo_hit =
      match memo, canon with
      | Some mc, Some c ->
        (match Memo.find mc c.cq_digest with
         | Some (ME_sat cm) ->
           let m = Array.make (max n_inputs 1) 0 in
           List.iter
             (fun (o, cn) ->
                if o < Array.length m && cn < Array.length cm then
                  m.(o) <- cm.(cn))
             c.cq_renaming;
           if check m cs then begin
             mc.Memo.hits <- mc.Memo.hits + 1;
             if Obs.Metrics.enabled () then Obs.Metrics.incr m_memo_hits;
             Some (V_sat m)
           end else begin
             (* stale or colliding entry: never surface it, but keep the
                model as a search seed and overwrite the entry below *)
             mc.Memo.invalid <- mc.Memo.invalid + 1;
             if Obs.Metrics.enabled () then Obs.Metrics.incr m_memo_invalid;
             cached_seed := Some m;
             None
           end
         | Some ME_unsat ->
           mc.Memo.hits <- mc.Memo.hits + 1;
           if Obs.Metrics.enabled () then Obs.Metrics.incr m_memo_hits;
           Some V_unsat
         | Some (ME_unknown ev) when ev >= max_evals ->
           mc.Memo.hits <- mc.Memo.hits + 1;
           if Obs.Metrics.enabled () then Obs.Metrics.incr m_memo_hits;
           Some V_unknown
         | Some (ME_unknown _) | None ->
           mc.Memo.misses <- mc.Memo.misses + 1;
           if Obs.Metrics.enabled () then Obs.Metrics.incr m_memo_misses;
           None)
      | _ -> None
    in
    match memo_hit with
    | Some v -> v
    | None ->
      (* incremental prefix reuse: a query that grows a proven-unsat set is
         unsat without search *)
      let concrete =
        match memo with None -> None | Some _ -> concrete_digests cs
      in
      let prefix_unsat =
        match memo, concrete with
        | Some mc, Some ds when Memo.unsat_superset mc ds ->
          mc.Memo.prefix_hits <- mc.Memo.prefix_hits + 1;
          if Obs.Metrics.enabled () then Obs.Metrics.incr m_memo_prefix;
          true
        | _ -> false
      in
      if prefix_unsat then V_unsat
      else begin
        let seed =
          match seed, !cached_seed with
          | Some _, _ -> seed
          | None, s -> s
        in
        let q = compile_query cs in
        let v =
          match mode with
          | Pipeline ->
            pipeline ~stats ~deadline ~rng ?seed ~n_inputs ~max_evals cs q
          | Portfolio ->
            (* the cheap entry probes first: the zero model and the caller
               seed settle most DSE negations without spinning up a race *)
            let zero = Array.make (max n_inputs 1) 0 in
            stats.evals <- stats.evals + 1;
            if fst (eval_query q zero) then V_sat zero
            else
              let seed_hit =
                match seed with
                | Some s ->
                  stats.evals <- stats.evals + 1;
                  if fst (eval_query q s) then Some (Array.copy s) else None
                | None -> None
              in
              (match seed_hit with
               | Some m -> V_sat m
               | None ->
                 portfolio ~stats ~deadline ~rng ?seed ~n_inputs ~max_evals
                   cs q)
        in
        (* store the conclusion; Unknown is only cacheable when it exhausted
           the eval budget rather than the wall clock *)
        (match memo, canon with
         | Some mc, Some c ->
           (match v with
            | V_sat m ->
              let cm = Array.make (max c.cq_n_canon 1) 0 in
              List.iter
                (fun (o, cn) ->
                   if o < Array.length m && cn < Array.length cm then
                     cm.(cn) <- m.(o))
                c.cq_renaming;
              Memo.store mc c.cq_digest (ME_sat cm)
            | V_unsat ->
              Memo.store mc c.cq_digest ME_unsat;
              (match concrete with
               | Some ds -> Memo.add_core mc ds
               | None -> ())
            | V_unknown -> Memo.store mc c.cq_digest (ME_unknown max_evals))
         | _ -> ());
        v
      end
  with Deadline ->
    Obs.Metrics.incr m_deadline;
    V_unknown

(* Back-compatible model-or-nothing entry point (the seed API): Pipeline
   mode unless asked otherwise, global memo if one is installed. *)
let solve ?rng ?stats ?deadline ?mode ?memo ?seed ~n_inputs ~max_evals cs =
  match
    solve_verdict ?rng ?stats ?deadline ?mode ?memo ?seed ~n_inputs
      ~max_evals cs
  with
  | V_sat m -> Some m
  | V_unsat | V_unknown -> None

(* Enumerate up to [limit] distinct values of [e] consistent with [cs]
   (value-set sampling for indirect control transfers). *)
let enumerate ?(rng = Util.Rng.create 43) ?stats ?(deadline = 0.0) ?mode
    ~n_inputs ~max_evals ~limit cs e =
  let stats = match stats with Some s -> s | None -> make_stats () in
  let found = ref [] in
  let rec go excluded k =
    (* poll the wall budget between restarts: each nested solve re-checks on
       entry, but the exclusion-constraint rebuild and the concrete
       evaluation below are outside any solver deadline stride *)
    if k = 0 || hit_deadline deadline then ()
    else
      let cs' =
        List.map (fun v -> { cond = Expr.bin Expr.Eq e (Expr.Const v); want = false })
          excluded
        @ cs
      in
      match solve ~rng ~stats ~deadline ?mode ~n_inputs ~max_evals cs' with
      | None -> ()
      | Some m ->
        let v = (Expr.evaluator ~input:(input_of_model m)) e in
        found := (v, m) :: !found;
        go (v :: excluded) (k - 1)
  in
  go [] limit;
  List.rev !found
