#!/usr/bin/env bash
# CI entry point: build, fast test tier, then a 200-case differential-fuzzing
# smoke across all four oracles.  The deep tier (dune build @fuzz) is not run
# here; see EXPERIMENTS.md, "Differential testing".
set -euo pipefail
cd "$(dirname "$0")"

echo "== build =="
dune build

echo "== fast test tier (@runtest) =="
dune runtest

echo "== difftest smoke (200 cases, seed 42) =="
dune exec bin/difftest.exe -- --cases 200 --seed 42

echo "== OK =="
