#!/usr/bin/env bash
# CI entry point: build, fast test tier, then a 200-case differential-fuzzing
# smoke across all four oracles.  The deep tier (dune build @fuzz) is not run
# here; see EXPERIMENTS.md, "Differential testing".
set -euo pipefail
cd "$(dirname "$0")"

echo "== build =="
dune build

echo "== fast test tier (@runtest) =="
dune runtest

echo "== static chain verification (full corpus, Table I/II matrix) =="
dune build @check

echo "== parallel smoke (@jobs: difftest --jobs 3 + ropcheck --jobs 4) =="
dune build @jobs

echo "== static-analysis lint (@lint: roplint matrix, 100% proven gate + fault injection) =="
dune build @lint

echo "== ROPfuscator layers (@layers: full stack ropcheck + opaque/hidden fault legs) =="
dune build @layers

echo "== layered difftest smoke (30 cases, strongest layer stack, verifier on) =="
dune exec bin/difftest.exe -- --cases 30 --seed 42 --config rop-layered-verified

echo "== observability (@obs: lib/obs suite + schema-validated --trace smoke) =="
dune build @obs

echo "== difftest smoke (200 cases, seed 42, verifier on, cross-engine oracle) =="
dune exec bin/difftest.exe -- --cases 200 --seed 42 --verify --engine both

echo "== campaign smoke (@campaign: tiny grid + resume, >=90% cache hits) =="
dune build @campaign

echo "== serving tier (@serve: daemon selftest, byte-identity + warm >=3x serial + baseline gate) =="
dune build @serve

echo "== emulator bench smoke (fast vs reference stepper, @bench) =="
dune build @bench

echo "== OK =="
